//! Session-oriented search execution: the [`SearchDriver`].
//!
//! The original front door was a pair of blocking scheduler calls that
//! disappeared for minutes and returned a single [`SearchOutcome`]. This
//! module replaces them with **sessions**: [`SearchDriver::start`] launches the search on a
//! background thread and hands back a [`SearchHandle`] with
//!
//! * a typed [`SearchEvent`] stream ([`SearchHandle::events`]) emitted at
//!   deterministic points of the depth/rung loop — identical for a fixed
//!   seed at any worker thread count,
//! * **cooperative cancellation** ([`SearchHandle::cancel`]): the engine
//!   stops at the next rung (parallel) or candidate (serial) boundary and
//!   drains the completed depths into a valid partial [`SearchOutcome`],
//! * live [`SearchProgress`] snapshots ([`SearchHandle::progress`]), and
//! * serde **checkpointing** ([`SearchHandle::checkpoint`] →
//!   [`SearchCheckpoint`], [`SearchDriver::resume`]): everything a later
//!   depth depends on — completed depth results, the predictor-gate
//!   ranker's learned state, the warm-start source — is captured, so
//!   resume-after-kill reproduces the uninterrupted run **bit for bit**
//!   (proposal is a pure function of the config; per-depth training builds
//!   on PR 3's `Resumable`/`TrainingSession` state machines, which never
//!   leak thread-count or wall-clock state into results).
//!
//! Execution mode ([`ExecutionMode::Serial`] — Algorithm 1 as written —
//! vs [`ExecutionMode::Parallel`] — the budget-aware successive-halving
//! pipeline) is folded into [`SearchConfig`]; one driver serves both.
//!
//! ```
//! use graphs::Graph;
//! use qarchsearch::search::SearchConfig;
//! use qarchsearch::session::SearchDriver;
//!
//! let graph = Graph::erdos_renyi(6, 0.5, 1);
//! let config = SearchConfig::builder()
//!     .max_depth(1)
//!     .max_gates_per_mixer(1)
//!     .optimizer_budget(30)
//!     .build();
//! let handle = SearchDriver::new(config).start(&[graph]).unwrap();
//! // ... consume handle.events() while the search runs ...
//! let outcome = handle.wait().unwrap();
//! assert!(outcome.best.energy > 0.0);
//! ```

use crate::error::SearchError;
use crate::evaluator::{CandidateResult, EnergyCache, Evaluator};
use crate::events::SearchEvent;
use crate::fault::{self, site, FaultContext};
use crate::pipeline::BudgetedScheduler;
use crate::predictor::BanditState;
use crate::qbuilder::QBuilder;
use crate::search::{DepthResult, ExecutionMode, SearchConfig, SearchOutcome};
use crate::sync::{lock_recover, wait_recover};
use graphs::Graph;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lifecycle state of a search session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStatus {
    /// The engine thread is evaluating.
    Running,
    /// Every depth finished; the outcome is ready.
    Finished,
    /// Cancelled; completed depths drained into a partial outcome (or
    /// [`SearchError::Cancelled`] if nothing had completed).
    Cancelled,
    /// The engine hit an error.
    Failed,
}

impl std::fmt::Display for SearchStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SearchStatus::Running => "running",
            SearchStatus::Finished => "finished",
            SearchStatus::Cancelled => "cancelled",
            SearchStatus::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// A live snapshot of a session's progress (depth-granular: counters update
/// as each depth completes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchProgress {
    /// Current lifecycle state.
    pub status: SearchStatus,
    /// Depths fully evaluated so far.
    pub depths_completed: usize,
    /// Deepest depth the session will search.
    pub max_depth: usize,
    /// Candidates evaluated across completed depths.
    pub candidates_evaluated: usize,
    /// Objective evaluations spent across completed depths.
    pub optimizer_evaluations: usize,
    /// Best mean energy seen so far, if any depth has completed.
    pub best_energy: Option<f64>,
    /// Wall-clock seconds attributed to the search so far (across resumes).
    pub elapsed_seconds: f64,
}

/// The cross-depth scheduler state captured in a [`SearchCheckpoint`]:
/// the predictor-gate ranker's learned values and the warm-start source.
/// Together with the (pure) candidate proposal in [`SearchConfig`], this is
/// everything a later depth's evaluation depends on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCheckpoint {
    /// Learned state of the ε-greedy ranker behind the predictor gate.
    pub ranker: BanditState,
    /// Whether the ranker has received any feedback yet (the gate only
    /// engages once it has).
    pub ranker_trained: bool,
    /// Best fully-trained candidate of the last completed depth (the
    /// warm-start source for the next depth).
    pub warm_source: Option<CandidateResult>,
}

/// A serializable snapshot of a search session at a depth boundary.
///
/// Produced by [`SearchHandle::checkpoint`]; consumed by
/// [`SearchDriver::resume`]. The format is a plain serde struct (JSON via
/// `serde_json`): stable under field addition on the emitting side only —
/// treat it as a **same-version** kill/resume token, not a long-term
/// archival format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// The full search configuration (including the execution mode).
    pub config: SearchConfig,
    /// The training graphs.
    pub graphs: Vec<Graph>,
    /// Depth results completed so far (depths `1..=completed.len()`).
    pub completed: Vec<DepthResult>,
    /// The first depth a resumed run will evaluate.
    pub next_depth: usize,
    /// Wall-clock seconds already spent (carried into the resumed outcome).
    pub elapsed_seconds: f64,
    /// Cross-depth scheduler state (`None` for serial sessions, which carry
    /// no state between depths).
    pub scheduler: Option<SchedulerCheckpoint>,
}

/// What the engine publishes for checkpoints/progress, updated at every
/// depth boundary.
struct SharedState {
    status: SearchStatus,
    completed: Vec<DepthResult>,
    scheduler: Option<SchedulerCheckpoint>,
    elapsed_seconds: f64,
}

struct Shared {
    cancel: AtomicBool,
    state: Mutex<SharedState>,
}

/// A cloneable cancellation token for a running session (what the
/// [`crate::server::JobServer`] stores per job so `cancel` requests reach
/// the right engine).
#[derive(Clone)]
pub struct Canceller {
    shared: Arc<Shared>,
}

impl Canceller {
    /// Request cooperative cancellation.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Canceller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Canceller(..)")
    }
}

// ---------------------------------------------------------------------------

/// The session-oriented search entry point: one driver for both execution
/// modes, returning a [`SearchHandle`] instead of blocking.
#[derive(Debug, Clone)]
pub struct SearchDriver {
    config: SearchConfig,
    faults: Option<FaultContext>,
    energy_cache: Option<EnergyCache>,
}

impl SearchDriver {
    /// A driver for the given configuration (execution mode included —
    /// see [`SearchConfig::mode`]).
    pub fn new(config: SearchConfig) -> SearchDriver {
        SearchDriver {
            config,
            faults: None,
            energy_cache: None,
        }
    }

    /// Arm a deterministic fault-injection context for this session's
    /// engine (`session.advance` per depth, `pipeline.rung` per rung).
    /// Inert in release builds; see [`crate::fault`].
    pub fn with_fault_context(mut self, faults: FaultContext) -> SearchDriver {
        self.faults = Some(faults);
        self
    }

    /// Share an [`EnergyCache`] with this session's evaluator, so the
    /// expensive per-graph classical reference state is reused across
    /// sessions (the job server injects its server-scoped cache here).
    /// Purely a memoization hint: results are bit-identical with or
    /// without it.
    pub fn with_energy_cache(mut self, cache: EnergyCache) -> SearchDriver {
        self.energy_cache = Some(cache);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Validate and launch the search on a background engine thread.
    pub fn start(&self, graphs: &[Graph]) -> Result<SearchHandle, SearchError> {
        self.config.validate_for(self.config.mode)?;
        if graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        Self::spawn(EngineSeed {
            config: self.config.clone(),
            graphs: graphs.to_vec(),
            completed: Vec::new(),
            scheduler: None,
            prior_elapsed: 0.0,
            faults: self.faults.clone(),
            energy_cache: self.energy_cache.clone(),
        })
    }

    /// Relaunch a session from a [`SearchCheckpoint`]: completed depths are
    /// carried over verbatim and evaluation continues at
    /// `checkpoint.next_depth`. For a fixed seed the final outcome is
    /// bit-identical to the uninterrupted run (timings aside).
    pub fn resume(checkpoint: SearchCheckpoint) -> Result<SearchHandle, SearchError> {
        Self::resume_with(checkpoint, None)
    }

    /// [`SearchDriver::resume`] with a fault-injection context (what the
    /// job server uses so resumed jobs stay chaos-testable).
    pub fn resume_with(
        checkpoint: SearchCheckpoint,
        faults: Option<FaultContext>,
    ) -> Result<SearchHandle, SearchError> {
        Self::resume_session(checkpoint, faults, None)
    }

    /// [`SearchDriver::resume_with`] plus an optionally shared
    /// [`EnergyCache`] (the full server-side resume path).
    pub fn resume_session(
        checkpoint: SearchCheckpoint,
        faults: Option<FaultContext>,
        energy_cache: Option<EnergyCache>,
    ) -> Result<SearchHandle, SearchError> {
        let SearchCheckpoint {
            config,
            graphs,
            completed,
            next_depth,
            elapsed_seconds,
            scheduler,
        } = checkpoint;
        config.validate_for(config.mode)?;
        if graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        if next_depth != completed.len() + 1 || next_depth > config.max_depth + 1 {
            return Err(SearchError::InvalidConfig {
                message: format!(
                    "inconsistent checkpoint: next_depth {} with {} completed depths (max_depth {})",
                    next_depth,
                    completed.len(),
                    config.max_depth
                ),
            });
        }
        Self::spawn(EngineSeed {
            config,
            graphs,
            completed,
            scheduler,
            prior_elapsed: elapsed_seconds,
            faults,
            energy_cache,
        })
    }

    /// Blocking convenience: `start(graphs)` + [`SearchHandle::wait`].
    pub fn run(&self, graphs: &[Graph]) -> Result<SearchOutcome, SearchError> {
        self.start(graphs)?.wait()
    }

    fn spawn(seed: EngineSeed) -> Result<SearchHandle, SearchError> {
        let shared = Arc::new(Shared {
            cancel: AtomicBool::new(false),
            state: Mutex::new(SharedState {
                status: SearchStatus::Running,
                completed: seed.completed.clone(),
                scheduler: seed.scheduler.clone(),
                elapsed_seconds: seed.prior_elapsed,
            }),
        });
        let (tx, rx) = mpsc::channel();
        let config = seed.config.clone();
        let graphs = seed.graphs.clone();
        let engine_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("qas-search-engine".into())
            .spawn(move || run_engine(seed, engine_shared, tx))
            .map_err(|e| SearchError::Evaluation {
                message: format!("failed to spawn the search engine thread: {e}"),
            })?;
        Ok(SearchHandle {
            shared,
            events: rx,
            join: Mutex::new(Some(join)),
            result: Mutex::new(None),
            result_cv: std::sync::Condvar::new(),
            config,
            graphs,
        })
    }
}

// ---------------------------------------------------------------------------

/// A running (or finished) search session.
///
/// Dropping the handle requests cancellation (the detached engine stops at
/// its next boundary); call [`wait`](Self::wait) to block for the outcome.
pub struct SearchHandle {
    shared: Arc<Shared>,
    events: Receiver<SearchEvent>,
    join: Mutex<Option<JoinHandle<Result<SearchOutcome, SearchError>>>>,
    result: Mutex<Option<Result<SearchOutcome, SearchError>>>,
    /// Signalled once `result` is populated (concurrent `wait` callers
    /// block here instead of spinning).
    result_cv: std::sync::Condvar,
    config: SearchConfig,
    graphs: Vec<Graph>,
}

impl SearchHandle {
    /// The typed event stream. Events arrive in deterministic order for a
    /// fixed seed; the stream closes after a terminal
    /// ([`SearchEvent::is_terminal`]) event.
    pub fn events(&self) -> &Receiver<SearchEvent> {
        &self.events
    }

    /// Blocking receive of the next event; `None` once the stream closed.
    pub fn next_event(&self) -> Option<SearchEvent> {
        self.events.recv().ok()
    }

    /// Request cooperative cancellation: the engine stops at the next rung
    /// (parallel) or candidate (serial) boundary, drains completed depths
    /// into a valid partial outcome, and closes the event stream.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// A cloneable cancellation token (for registries like the job server
    /// that must cancel without holding the handle).
    pub fn canceller(&self) -> Canceller {
        Canceller {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Whether the engine has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        self.progress().status != SearchStatus::Running
    }

    /// Live progress snapshot (updates at every depth boundary).
    pub fn progress(&self) -> SearchProgress {
        let state = lock_recover(&self.shared.state);
        let candidates_evaluated = state
            .completed
            .iter()
            .map(|d| d.candidates.len())
            .sum::<usize>();
        let optimizer_evaluations = state
            .completed
            .iter()
            .flat_map(|d| &d.candidates)
            .map(|c| c.total_evaluations)
            .sum::<usize>();
        let best_energy = state
            .completed
            .iter()
            .map(|d| d.best_energy)
            .fold(None::<f64>, |acc, e| Some(acc.map_or(e, |a| a.max(e))));
        SearchProgress {
            status: state.status,
            depths_completed: state.completed.len(),
            max_depth: self.config.max_depth,
            candidates_evaluated,
            optimizer_evaluations,
            best_energy,
            elapsed_seconds: state.elapsed_seconds,
        }
    }

    /// Snapshot a [`SearchCheckpoint`] of the session as of the last
    /// completed depth. Valid at any time — while running, after
    /// cancellation, or after completion (a checkpoint of a finished run
    /// resumes into an immediate [`SearchEvent::Finished`]).
    pub fn checkpoint(&self) -> SearchCheckpoint {
        let state = lock_recover(&self.shared.state);
        SearchCheckpoint {
            config: self.config.clone(),
            graphs: self.graphs.clone(),
            completed: state.completed.clone(),
            next_depth: state.completed.len() + 1,
            elapsed_seconds: state.elapsed_seconds,
            scheduler: state.scheduler.clone(),
        }
    }

    /// Block until the engine finishes and return the outcome (idempotent:
    /// later calls return the cached result). A cancelled session returns
    /// the partial outcome of its completed depths, or
    /// [`SearchError::Cancelled`] if nothing had completed.
    pub fn wait(&self) -> Result<SearchOutcome, SearchError> {
        {
            let cached = lock_recover(&self.result);
            if let Some(result) = cached.as_ref() {
                return result.clone();
            }
        }
        let join = {
            let mut slot = lock_recover(&self.join);
            slot.take()
        };
        match join {
            Some(handle) => {
                // A panicking engine (a candidate evaluation blowing up, an
                // injected chaos fault) is captured as a typed error with
                // its payload message, not swallowed into a generic one.
                let result = handle.join().unwrap_or_else(|payload| {
                    Err(SearchError::Panicked {
                        message: fault::panic_message(payload.as_ref()),
                    })
                });
                let mut cached = lock_recover(&self.result);
                let result = cached.get_or_insert(result).clone();
                self.result_cv.notify_all();
                result
            }
            // Another thread is joining; block until it caches the result.
            None => {
                let mut cached = lock_recover(&self.result);
                loop {
                    if let Some(result) = cached.as_ref() {
                        return result.clone();
                    }
                    cached = wait_recover(&self.result_cv, cached);
                }
            }
        }
    }
}

impl std::fmt::Debug for SearchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchHandle")
            .field("progress", &self.progress())
            .finish()
    }
}

impl Drop for SearchHandle {
    fn drop(&mut self) {
        // A detached engine would otherwise keep burning CPU with nobody
        // able to observe it; stop it at the next boundary.
        self.cancel();
    }
}

// ---------------------------------------------------------------------------

struct EngineSeed {
    config: SearchConfig,
    graphs: Vec<Graph>,
    completed: Vec<DepthResult>,
    scheduler: Option<SchedulerCheckpoint>,
    prior_elapsed: f64,
    faults: Option<FaultContext>,
    /// Optionally shared evaluator memo (server-scoped when present).
    energy_cache: Option<EnergyCache>,
}

/// Mode-specific evaluation machinery, built once per engine run.
enum DepthEvaluator {
    Serial {
        builder: QBuilder,
        evaluator: Evaluator,
    },
    Parallel {
        scheduler: Box<BudgetedScheduler>,
        threads: usize,
    },
}

impl DepthEvaluator {
    /// The cross-depth state a checkpoint must capture (`None` for serial
    /// mode, which carries none).
    fn scheduler_state(&self) -> Option<SchedulerCheckpoint> {
        match self {
            DepthEvaluator::Serial { .. } => None,
            DepthEvaluator::Parallel { scheduler, .. } => Some(scheduler.checkpoint()),
        }
    }
}

fn run_engine(
    seed: EngineSeed,
    shared: Arc<Shared>,
    tx: Sender<SearchEvent>,
) -> Result<SearchOutcome, SearchError> {
    let EngineSeed {
        config,
        graphs,
        mut completed,
        scheduler,
        prior_elapsed,
        faults,
        energy_cache,
    } = seed;
    let run_start = Instant::now();
    let start_depth = completed.len() + 1;
    let emit = |event: SearchEvent| {
        // A dropped receiver only means nobody is listening; the search
        // result is still wanted through `wait()`.
        let _ = tx.send(event);
    };
    emit(SearchEvent::Started {
        problem: config.evaluator.problem.name().to_string(),
        mode: config.mode,
        max_depth: config.max_depth,
        start_depth,
        num_graphs: graphs.len(),
    });

    let mut machinery = match config.mode {
        ExecutionMode::Serial => DepthEvaluator::Serial {
            builder: QBuilder::new(config.alphabet.clone()),
            evaluator: match energy_cache.clone() {
                Some(cache) => Evaluator::with_energy_cache(config.evaluator.clone(), cache),
                None => Evaluator::new(config.evaluator.clone()),
            },
        },
        ExecutionMode::Parallel => DepthEvaluator::Parallel {
            scheduler: Box::new(match scheduler {
                Some(state) => BudgetedScheduler::restore(&config, state, energy_cache.clone()),
                None => BudgetedScheduler::with_energy_cache(&config, energy_cache.clone()),
            }),
            threads: config
                .threads
                .unwrap_or_else(rayon::current_num_threads)
                .max(1),
        },
    };
    let parallel_threads = match &machinery {
        DepthEvaluator::Serial { .. } => None,
        DepthEvaluator::Parallel { threads, .. } => Some(*threads),
    };

    let publish = |completed: &[DepthResult],
                   scheduler: Option<SchedulerCheckpoint>,
                   status: SearchStatus| {
        let mut state = lock_recover(&shared.state);
        state.completed = completed.to_vec();
        state.scheduler = scheduler;
        state.elapsed_seconds = prior_elapsed + run_start.elapsed().as_secs_f64();
        state.status = status;
    };
    let outcome_of = |completed: Vec<DepthResult>| {
        SearchOutcome::from_depth_results(
            config.evaluator.problem.name().to_string(),
            completed,
            prior_elapsed + run_start.elapsed().as_secs_f64(),
            parallel_threads,
            config.evaluator.budget,
            graphs.len(),
        )
    };
    let cancel = &shared.cancel;
    let cancelled_now = || cancel.load(Ordering::SeqCst);

    for depth in start_depth..=config.max_depth {
        let depth_start = Instant::now();
        let candidates = config.propose_candidates(depth);
        emit(SearchEvent::DepthStarted {
            depth,
            proposed: candidates.len(),
        });

        let evaluated = if cancelled_now() {
            Err(SearchError::Cancelled)
        } else if let Err(e) = fault::trip(faults.as_ref(), site::SESSION_ADVANCE) {
            // An injected transient at the depth boundary aborts the depth
            // exactly like a real evaluation failure (retryable upstream).
            Err(e)
        } else {
            match &mut machinery {
                DepthEvaluator::Serial { builder, evaluator } => evaluate_depth_serial(
                    depth,
                    &candidates,
                    &graphs,
                    builder,
                    evaluator,
                    cancel,
                    &emit,
                ),
                DepthEvaluator::Parallel { scheduler, threads } => {
                    let mut sink = |event: SearchEvent| emit(event);
                    scheduler
                        .evaluate_depth(
                            depth,
                            candidates,
                            &graphs,
                            *threads,
                            cancel,
                            &mut sink,
                            faults.as_ref(),
                        )
                        .map(|d| (d.results, d.rungs, d.gated_out))
                }
            }
        };

        match evaluated {
            Ok((results, rungs, gated_out)) => {
                if matches!(machinery, DepthEvaluator::Parallel { .. }) {
                    // Serial evaluation already emitted these live, one per
                    // candidate; under the pipeline the results only exist
                    // once every rung has run.
                    for (index, cand) in results.iter().enumerate() {
                        emit(SearchEvent::CandidateEvaluated {
                            depth,
                            candidate: index,
                            mixer_label: cand.mixer_label.clone(),
                            mean_energy: cand.mean_energy,
                            total_evaluations: cand.total_evaluations,
                            pruned_at_rung: cand.pruned_at_rung,
                        });
                    }
                }
                let best_energy = results
                    .iter()
                    .map(|r| r.mean_energy)
                    .fold(f64::NEG_INFINITY, f64::max);
                let pruned = results
                    .iter()
                    .filter(|c| c.pruned_at_rung.is_some())
                    .count();
                let evaluated = results.len();
                completed.push(DepthResult {
                    depth,
                    candidates: results,
                    elapsed_seconds: depth_start.elapsed().as_secs_f64(),
                    best_energy,
                    rungs,
                    gated_out,
                });
                // Publish **before** emitting: an observer that checkpoints
                // on `DepthCompleted` must see the depth it was told about.
                publish(
                    &completed,
                    machinery.scheduler_state(),
                    SearchStatus::Running,
                );
                emit(SearchEvent::DepthCompleted {
                    depth,
                    best_energy,
                    evaluated,
                    pruned,
                });
            }
            Err(SearchError::Cancelled) => {
                publish(
                    &completed,
                    machinery.scheduler_state(),
                    SearchStatus::Cancelled,
                );
                emit(SearchEvent::Cancelled {
                    completed_depths: completed.len(),
                });
                if completed.is_empty() {
                    return Err(SearchError::Cancelled);
                }
                return outcome_of(completed);
            }
            Err(other) => {
                publish(
                    &completed,
                    machinery.scheduler_state(),
                    SearchStatus::Failed,
                );
                emit(SearchEvent::Failed {
                    message: other.to_string(),
                });
                return Err(other);
            }
        }
    }

    let outcome = outcome_of(completed.clone());
    match &outcome {
        Ok(o) => {
            publish(
                &completed,
                machinery.scheduler_state(),
                SearchStatus::Finished,
            );
            emit(SearchEvent::Finished {
                best_mixer: o.best.mixer_label.clone(),
                best_depth: o.best.depth,
                best_energy: o.best.energy,
                candidates_evaluated: o.num_candidates_evaluated,
            });
        }
        Err(e) => {
            publish(
                &completed,
                machinery.scheduler_state(),
                SearchStatus::Failed,
            );
            emit(SearchEvent::Failed {
                message: e.to_string(),
            });
        }
    }
    outcome
}

/// Algorithm 1's inner loop, candidate by candidate, with a cancellation
/// check between candidates.
#[allow(clippy::too_many_arguments)]
fn evaluate_depth_serial(
    depth: usize,
    candidates: &[Vec<qcircuit::Gate>],
    graphs: &[Graph],
    builder: &QBuilder,
    evaluator: &Evaluator,
    cancel: &AtomicBool,
    emit: &dyn Fn(SearchEvent),
) -> Result<(Vec<CandidateResult>, Vec<crate::search::RungStat>, usize), SearchError> {
    let mut results = Vec::with_capacity(candidates.len());
    for (index, gates) in candidates.iter().enumerate() {
        if cancel.load(Ordering::SeqCst) {
            return Err(SearchError::Cancelled);
        }
        let mixer = builder.build_mixer(gates)?;
        let result = evaluator.evaluate(graphs, &mixer, depth)?;
        emit(SearchEvent::CandidateEvaluated {
            depth,
            candidate: index,
            mixer_label: result.mixer_label.clone(),
            mean_energy: result.mean_energy,
            total_evaluations: result.total_evaluations,
            pruned_at_rung: None,
        });
        results.push(result);
    }
    Ok((results, Vec::new(), 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::GateAlphabet;
    use qaoa::Backend;

    fn tiny_config() -> SearchConfig {
        SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(2)
            .optimizer_budget(25)
            .backend(Backend::StateVector)
            .seed(3)
            .build()
    }

    fn tiny_graphs() -> Vec<Graph> {
        vec![Graph::cycle(4), Graph::erdos_renyi(5, 0.6, 8)]
    }

    #[test]
    fn driver_runs_both_modes() {
        for mode in [ExecutionMode::Serial, ExecutionMode::Parallel] {
            let mut cfg = tiny_config();
            cfg.mode = mode;
            let outcome = SearchDriver::new(cfg).run(&tiny_graphs()).unwrap();
            assert_eq!(outcome.num_candidates_evaluated, 6, "{mode}");
            assert_eq!(
                outcome.parallel_threads.is_none(),
                mode == ExecutionMode::Serial
            );
        }
    }

    #[test]
    fn event_stream_has_lifecycle_shape() {
        let handle = SearchDriver::new(tiny_config())
            .start(&tiny_graphs())
            .unwrap();
        let events: Vec<SearchEvent> = handle.events().iter().collect();
        assert!(matches!(events.first(), Some(SearchEvent::Started { .. })));
        assert!(events.last().unwrap().is_terminal());
        let evaluated = events
            .iter()
            .filter(|e| matches!(e, SearchEvent::CandidateEvaluated { .. }))
            .count();
        assert_eq!(evaluated, 6);
        let outcome = handle.wait().unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 6);
        assert!(handle.is_finished());
        assert_eq!(handle.progress().status, SearchStatus::Finished);
    }

    #[test]
    fn wait_is_idempotent() {
        let handle = SearchDriver::new(tiny_config())
            .start(&tiny_graphs())
            .unwrap();
        let a = handle.wait().unwrap();
        let b = handle.wait().unwrap();
        assert_eq!(a.best.energy.to_bits(), b.best.energy.to_bits());
    }

    #[test]
    fn cancel_before_any_depth_reports_cancelled() {
        let mut cfg = tiny_config();
        cfg.max_depth = 2;
        let driver = SearchDriver::new(cfg);
        let handle = driver.start(&tiny_graphs()).unwrap();
        handle.cancel();
        match handle.wait() {
            // Depending on timing the first depth may already have finished.
            Ok(outcome) => assert!(outcome.depth_results.len() <= 2),
            Err(e) => assert_eq!(e, SearchError::Cancelled),
        }
        let status = handle.progress().status;
        assert!(
            status == SearchStatus::Cancelled || status == SearchStatus::Finished,
            "{status}"
        );
    }

    #[test]
    fn runtime_failure_emits_terminal_failed_event() {
        use crate::constraints::{Constraint, ConstraintSet};
        // Validation passes, but the {rx, ry} alphabet can never satisfy a
        // require-H constraint, so every depth evaluates zero candidates
        // and the run fails when building the outcome.
        let mut cfg = tiny_config();
        cfg.constraints =
            ConstraintSet::new(vec![Constraint::RequireAnyOf(vec![qcircuit::Gate::H])]);
        let handle = SearchDriver::new(cfg).start(&tiny_graphs()).unwrap();
        let events: Vec<SearchEvent> = handle.events().iter().collect();
        assert!(
            matches!(events.last(), Some(SearchEvent::Failed { .. })),
            "stream must end on a terminal event, got {:?}",
            events.last()
        );
        assert!(handle.wait().is_err());
        assert_eq!(handle.progress().status, SearchStatus::Failed);
    }

    #[test]
    fn empty_graphs_rejected_before_spawn() {
        assert!(matches!(
            SearchDriver::new(tiny_config()).start(&[]),
            Err(SearchError::NoGraphs)
        ));
    }

    #[test]
    fn invalid_resume_checkpoint_is_rejected() {
        let handle = SearchDriver::new(tiny_config())
            .start(&tiny_graphs())
            .unwrap();
        handle.wait().unwrap();
        let mut ckpt = handle.checkpoint();
        ckpt.next_depth = 5;
        assert!(matches!(
            SearchDriver::resume(ckpt),
            Err(SearchError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn checkpoint_of_finished_run_resumes_to_same_outcome() {
        let driver = SearchDriver::new(tiny_config());
        let handle = driver.start(&tiny_graphs()).unwrap();
        let outcome = handle.wait().unwrap();
        let ckpt = handle.checkpoint();
        assert_eq!(ckpt.next_depth, 2);
        let resumed = SearchDriver::resume(ckpt).unwrap().wait().unwrap();
        assert_eq!(outcome.best.energy.to_bits(), resumed.best.energy.to_bits());
        assert_eq!(outcome.best.mixer_label, resumed.best.mixer_label);
    }
}
