//! The durable job store behind `qas serve --state-dir`: a write-ahead,
//! crc-checked JSON-lines journal that makes the serve tier crash-safe.
//!
//! ## Journal format
//!
//! The store owns one append-only file, `journal.log`, inside the state
//! directory. Each line is one [`JournalRecord`]:
//!
//! ```text
//! crc32hex SP json NL
//! ```
//!
//! — eight lowercase hex digits of the CRC-32 (IEEE) of the JSON bytes, a
//! single space, the record as compact JSON, a newline. The checksum is
//! computed over the exact bytes written, so replay never has to
//! re-serialize (JSON key order or float formatting can never invalidate a
//! record).
//!
//! ## Crash semantics
//!
//! * **Torn tail**: a crash mid-append leaves a final line without its
//!   newline, or with a truncated/corrupt body. Replay detects the
//!   mismatch, drops the tail, and reports it in
//!   [`ReplayedState::dropped_records`] — a torn tail is data loss of at
//!   most the record being written, never a refusal to start.
//! * **Mid-file corruption** is indistinguishable from a torn tail to the
//!   checksum; replay conservatively stops at the first bad line (records
//!   after it are dropped and counted).
//! * **Recovery**: [`JobStore::open`] replays the journal into a
//!   [`ReplayedState`]; the [`crate::server::JobServer`] re-enqueues
//!   incomplete jobs, resuming each from its last
//!   [`SearchCheckpoint`] — bit-identical to an uninterrupted run, because
//!   checkpoints capture everything later depths depend on.
//! * **Compaction**: the journal grows by one line per state transition
//!   and one (large) line per checkpoint. [`JobStore::compact`] rewrites
//!   it to the minimal record set for the live jobs via a temp-file +
//!   atomic rename, and runs automatically on open when the journal has
//!   accumulated garbage and on clean shutdown.
//!
//! One server per state directory: the store takes no lock file, and two
//! writers would interleave their appends.

use crate::error::SearchError;
use crate::fault::{site, FaultContext};
use crate::search::SearchOutcome;
use crate::server::{JobSpec, JobState};
use crate::session::SearchCheckpoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside the state directory.
const JOURNAL_FILE: &str = "journal.log";
/// Compaction scratch file (atomically renamed over the journal).
const JOURNAL_TMP: &str = "journal.tmp";

/// Configuration of the durable store (the `--state-dir` side of
/// [`crate::server::ServerOptions`]).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the journal (created if missing).
    pub dir: PathBuf,
    /// Journal a [`SearchCheckpoint`] every N completed depths (1 = every
    /// depth — the finest-grained, safest cadence; larger values trade
    /// recovery granularity for journal volume).
    pub checkpoint_every: usize,
}

impl StoreConfig {
    /// A store in `dir`, checkpointing at every depth boundary.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            checkpoint_every: 1,
        }
    }

    /// Set the checkpoint cadence (clamped to ≥ 1).
    pub fn checkpoint_every(mut self, every: usize) -> StoreConfig {
        self.checkpoint_every = every.max(1);
        self
    }
}

/// One durable record. Appended write-ahead: the journal reflects every
/// externally visible job transition before (or atomically with) the
/// in-memory registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A job was accepted into the queue.
    Submitted {
        /// The job id.
        id: u64,
        /// The full job spec (config, graphs, scheduling metadata).
        spec: JobSpec,
    },
    /// A job changed lifecycle state.
    State {
        /// The job id.
        id: u64,
        /// The new state.
        state: JobState,
        /// Retry attempts consumed so far.
        retries: u32,
    },
    /// Rung-granular progress (observability + kill-point coverage; cheap).
    Progress {
        /// The job id.
        id: u64,
        /// Depth of the completed rung.
        depth: usize,
        /// Rung index within the depth.
        rung: usize,
    },
    /// A resumable snapshot at a depth boundary.
    Checkpoint {
        /// The job id.
        id: u64,
        /// The snapshot (self-contained: config + graphs + state).
        checkpoint: SearchCheckpoint,
    },
    /// A terminal result. Exactly one of `outcome`/`error` is set (the
    /// vendored serde has no `Result` impl, so the two arms are spelled
    /// out); cancelled jobs may carry a partial outcome in `outcome`.
    Finished {
        /// The job id.
        id: u64,
        /// The successful (possibly partial) outcome.
        outcome: Option<SearchOutcome>,
        /// The terminal error.
        error: Option<SearchError>,
    },
    /// A terminal job's record was dropped (`forget` or retention).
    Forgotten {
        /// The job id.
        id: u64,
    },
    /// An entry of the content-addressed result cache was stored: the
    /// canonical spec rendering (the full-equality guard for hash
    /// collisions) plus the finished outcome it maps to. Re-putting a key
    /// replaces the previous entry.
    CachePut {
        /// FNV-1a 64 hash of the canonical spec rendering.
        key: u64,
        /// The canonical `(config, graphs)` JSON the key was hashed from.
        canonical: String,
        /// The completed outcome served on future hits.
        outcome: SearchOutcome,
    },
    /// A result-cache entry was dropped (LRU eviction).
    CacheEvict {
        /// The evicted entry's key hash.
        key: u64,
    },
    /// The server stopped cleanly: queued + suspended jobs were
    /// checkpointed and will resume on restart.
    CleanShutdown,
}

/// One job folded out of the journal by replay.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// The job id.
    pub id: u64,
    /// The job spec as submitted.
    pub spec: JobSpec,
    /// Last journaled state (terminal states are authoritative; a job left
    /// `Running` by a crash is re-enqueued by the server).
    pub state: JobState,
    /// Retry attempts consumed before the crash.
    pub retries: u32,
    /// The most recent checkpoint, if any was journaled.
    pub checkpoint: Option<SearchCheckpoint>,
    /// The terminal result, if the job finished.
    pub result: Option<Result<SearchOutcome, SearchError>>,
}

impl ReplayedJob {
    /// Whether the job finished (result journaled) before the restart.
    pub fn is_terminal(&self) -> bool {
        self.result.is_some()
    }
}

/// One result-cache entry folded out of the journal by replay.
#[derive(Debug, Clone)]
pub struct ReplayedCacheEntry {
    /// FNV-1a 64 hash of the canonical spec rendering.
    pub key: u64,
    /// The canonical `(config, graphs)` JSON (collision guard).
    pub canonical: String,
    /// The cached outcome.
    pub outcome: SearchOutcome,
}

/// Everything replay recovered from the journal.
#[derive(Debug, Default)]
pub struct ReplayedState {
    /// Jobs by id (ascending — BTreeMap keeps submission order).
    pub jobs: BTreeMap<u64, ReplayedJob>,
    /// Live result-cache entries in least-recently-written-first order
    /// (a re-put moves its entry to the back).
    pub cache: Vec<ReplayedCacheEntry>,
    /// The next job id to hand out (max seen + 1).
    pub next_id: u64,
    /// Whether the journal ends in a [`JournalRecord::CleanShutdown`].
    pub clean_shutdown: bool,
    /// Valid records replayed.
    pub records: usize,
    /// Trailing records dropped for checksum/format errors (torn tail).
    pub dropped_records: usize,
}

/// The open journal: an append handle plus bookkeeping for compaction.
pub struct JobStore {
    dir: PathBuf,
    file: File,
    /// Records appended since the journal was last compacted (replayed
    /// records count on open).
    records: usize,
    faults: Option<FaultContext>,
}

impl JobStore {
    /// Open (or create) the journal under `dir` and replay it.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(JobStore, ReplayedState), SearchError> {
        Self::open_with_faults(dir, None)
    }

    /// [`JobStore::open`] with an armed fault context (tests).
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        faults: Option<FaultContext>,
    ) -> Result<(JobStore, ReplayedState), SearchError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| store_err("create state dir", &dir, &e))?;
        let path = dir.join(JOURNAL_FILE);
        let replayed = replay(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| store_err("open journal", &path, &e))?;
        let mut store = JobStore {
            dir,
            file,
            records: replayed.records + replayed.dropped_records,
            faults,
        };
        // A torn tail means the file holds bytes replay will not trust;
        // compact immediately so the journal is wholly valid again.
        if replayed.dropped_records > 0 || store.is_garbage_heavy(&replayed) {
            store.compact(&replayed, replayed.clean_shutdown)?;
        }
        Ok((store, replayed))
    }

    /// The journal path (diagnostics, tests).
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Append one record: checksum + JSON + newline in a single write, then
    /// flush. Durability-critical records (submissions, results, shutdown)
    /// are additionally fsynced. Checkpoints are deliberately *not*: losing
    /// one to a crash only means replay resumes from an earlier checkpoint
    /// — still bit-identical — and skipping the fsync keeps the journaling
    /// overhead of a running search negligible.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), SearchError> {
        if let Some(ctx) = &self.faults {
            ctx.trip(site::STORE_APPEND)?;
        }
        let json = serde_json::to_string(record).map_err(|e| SearchError::Store {
            message: format!("serialize journal record: {e}"),
        })?;
        let line = format!("{:08x} {}\n", crc32(json.as_bytes()), json);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| store_err("append journal", &self.journal_path(), &e))?;
        self.records += 1;
        let durable = matches!(
            record,
            JournalRecord::Submitted { .. }
                | JournalRecord::Finished { .. }
                | JournalRecord::CleanShutdown
        );
        if durable {
            self.file
                .sync_data()
                .map_err(|e| store_err("sync journal", &self.journal_path(), &e))?;
        }
        Ok(())
    }

    /// Re-read the journal from disk (the authoritative picture, including
    /// records appended by this handle).
    pub fn replay_current(&mut self) -> Result<ReplayedState, SearchError> {
        self.file
            .sync_data()
            .map_err(|e| store_err("sync journal", &self.journal_path(), &e))?;
        replay(&self.journal_path())
    }

    /// Rewrite the journal to the minimal records reproducing `state`:
    /// per job (ascending id) a `Submitted`, a `State`, the last
    /// `Checkpoint` (if any), and the `Finished` (if terminal) — plus a
    /// trailing `CleanShutdown` when `clean` is set. Atomic via temp file +
    /// rename.
    pub fn compact(&mut self, state: &ReplayedState, clean: bool) -> Result<(), SearchError> {
        let tmp_path = self.dir.join(JOURNAL_TMP);
        let mut records = Vec::new();
        for job in state.jobs.values() {
            records.push(JournalRecord::Submitted {
                id: job.id,
                spec: job.spec.clone(),
            });
            records.push(JournalRecord::State {
                id: job.id,
                state: job.state.clone(),
                retries: job.retries,
            });
            if let Some(checkpoint) = &job.checkpoint {
                records.push(JournalRecord::Checkpoint {
                    id: job.id,
                    checkpoint: checkpoint.clone(),
                });
            }
            if let Some(result) = &job.result {
                let (outcome, error) = match result {
                    Ok(outcome) => (Some(outcome.clone()), None),
                    Err(error) => (None, Some(error.clone())),
                };
                records.push(JournalRecord::Finished {
                    id: job.id,
                    outcome,
                    error,
                });
            }
        }
        for entry in &state.cache {
            records.push(JournalRecord::CachePut {
                key: entry.key,
                canonical: entry.canonical.clone(),
                outcome: entry.outcome.clone(),
            });
        }
        if clean {
            records.push(JournalRecord::CleanShutdown);
        }

        let mut tmp = File::create(&tmp_path).map_err(|e| store_err("create", &tmp_path, &e))?;
        for record in &records {
            let json = serde_json::to_string(record).map_err(|e| SearchError::Store {
                message: format!("serialize journal record: {e}"),
            })?;
            let line = format!("{:08x} {}\n", crc32(json.as_bytes()), json);
            tmp.write_all(line.as_bytes())
                .map_err(|e| store_err("write", &tmp_path, &e))?;
        }
        tmp.sync_data()
            .map_err(|e| store_err("sync", &tmp_path, &e))?;
        drop(tmp);
        let path = self.journal_path();
        std::fs::rename(&tmp_path, &path).map_err(|e| store_err("rename over", &path, &e))?;
        // The append handle pointed at the replaced inode; reopen.
        self.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| store_err("reopen journal", &path, &e))?;
        self.records = records.len();
        Ok(())
    }

    /// Heuristic: the journal carries substantially more records than a
    /// compact rewrite would.
    fn is_garbage_heavy(&self, state: &ReplayedState) -> bool {
        // Compact form: ≤ 4 records per live job, one per live cache entry
        // (+1 shutdown marker).
        let compact = state.jobs.len() * 4 + state.cache.len() + 1;
        self.records > compact * 2 + 64
    }
}

impl std::fmt::Debug for JobStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobStore")
            .field("dir", &self.dir)
            .field("records", &self.records)
            .finish()
    }
}

/// The journal path inside a state directory — what the cluster
/// coordinator hands to [`replay`] to read a dead shard's journal
/// post-mortem (read-only; the dead shard's files are never mutated, so
/// a restarted shard recovers its own state untouched).
pub fn journal_path_in(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Replay the journal at `path` (missing file = empty state).
pub fn replay(path: &Path) -> Result<ReplayedState, SearchError> {
    let mut state = ReplayedState {
        next_id: 1,
        ..ReplayedState::default()
    };
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| store_err("read journal", path, &e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(store_err("open journal", path, &e)),
    }

    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    // A well-formed journal ends in a newline, leaving one empty trailing
    // split; anything else is a torn final line.
    let torn_unterminated = match lines.last() {
        Some([]) => {
            lines.pop();
            false
        }
        Some(_) => {
            lines.pop();
            true
        }
        None => false,
    };
    let total_lines = lines.len() + usize::from(torn_unterminated);

    for line in lines {
        let Some(record) = decode_line(line) else {
            // Checksum or format failure: conservatively stop trusting the
            // journal from here on (torn tail / corruption).
            break;
        };
        state.records += 1;
        apply(&mut state, record);
    }
    state.dropped_records = total_lines - state.records;
    finalize(&mut state);
    Ok(state)
}

/// Decode one journal line; `None` on any checksum or format mismatch.
fn decode_line(line: &[u8]) -> Option<JournalRecord> {
    // "crc32hex SP json" — 8 hex digits, space, at least "{}".
    if line.len() < 10 || line[8] != b' ' {
        return None;
    }
    let crc_hex = std::str::from_utf8(&line[..8]).ok()?;
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    let json = &line[9..];
    if crc32(json) != want {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(json).ok()?).ok()
}

/// Fold one record into the replay state.
fn apply(state: &mut ReplayedState, record: JournalRecord) {
    // Any record after a clean-shutdown marker means the server came back:
    // the journal is live again.
    state.clean_shutdown = false;
    match record {
        JournalRecord::Submitted { id, spec } => {
            state.next_id = state.next_id.max(id + 1);
            state.jobs.insert(
                id,
                ReplayedJob {
                    id,
                    spec,
                    state: JobState::Queued,
                    retries: 0,
                    checkpoint: None,
                    result: None,
                },
            );
        }
        JournalRecord::State {
            id,
            state: job_state,
            retries,
        } => {
            if let Some(job) = state.jobs.get_mut(&id) {
                job.state = job_state;
                job.retries = retries;
            }
        }
        JournalRecord::Progress { .. } => {}
        JournalRecord::Checkpoint { id, checkpoint } => {
            if let Some(job) = state.jobs.get_mut(&id) {
                job.checkpoint = Some(checkpoint);
            }
        }
        JournalRecord::Finished { id, outcome, error } => {
            if let Some(job) = state.jobs.get_mut(&id) {
                job.result = Some(match (outcome, error) {
                    (Some(outcome), _) => Ok(outcome),
                    (None, Some(error)) => Err(error),
                    (None, None) => Err(SearchError::Store {
                        message: "journal Finished record carried neither outcome nor error"
                            .to_string(),
                    }),
                });
            }
        }
        JournalRecord::Forgotten { id } => {
            state.jobs.remove(&id);
        }
        JournalRecord::CachePut {
            key,
            canonical,
            outcome,
        } => {
            state.cache.retain(|entry| entry.key != key);
            state.cache.push(ReplayedCacheEntry {
                key,
                canonical,
                outcome,
            });
        }
        JournalRecord::CacheEvict { key } => {
            state.cache.retain(|entry| entry.key != key);
        }
        JournalRecord::CleanShutdown => {
            state.clean_shutdown = true;
        }
    }
}

/// Reconcile state/result mismatches a crash can leave behind (e.g. the
/// `Finished` record landed but the terminal `State` did not).
fn finalize(state: &mut ReplayedState) {
    for job in state.jobs.values_mut() {
        match &job.result {
            Some(result) if !job.state.is_terminal() => {
                job.state = match result {
                    Ok(_) => JobState::Completed,
                    Err(SearchError::Cancelled) => JobState::Cancelled,
                    Err(SearchError::DeadlineExceeded { .. }) => JobState::TimedOut,
                    Err(SearchError::Panicked { message }) => JobState::Failed {
                        panic: Some(message.clone()),
                    },
                    Err(_) => JobState::Failed { panic: None },
                };
            }
            None if job.state.is_terminal() => {
                // Terminal state without its result record: the crash ate
                // the outcome; treat as incomplete and re-run.
                job.state = JobState::Queued;
            }
            _ => {}
        }
    }
}

fn store_err(what: &str, path: &Path, e: &dyn std::fmt::Display) -> SearchError {
    SearchError::Store {
        message: format!("{what} {}: {e}", path.display()),
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven — implemented here because the
// workspace vendors no checksum crate.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::GateAlphabet;
    use crate::search::SearchConfig;
    use graphs::Graph;
    use qaoa::Backend;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qas-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> JobSpec {
        let config = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(1)
            .optimizer_budget(10)
            .no_prune()
            .backend(Backend::StateVector)
            .threads(1)
            .seed(1)
            .build();
        JobSpec::new(config, vec![Graph::cycle(4)])
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_round_trips_submission_and_state() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, replayed) = JobStore::open(&dir).unwrap();
            assert!(replayed.jobs.is_empty());
            assert_eq!(replayed.next_id, 1);
            store
                .append(&JournalRecord::Submitted {
                    id: 1,
                    spec: tiny_spec(),
                })
                .unwrap();
            store
                .append(&JournalRecord::State {
                    id: 1,
                    state: JobState::Running,
                    retries: 0,
                })
                .unwrap();
            store
                .append(&JournalRecord::Progress {
                    id: 1,
                    depth: 1,
                    rung: 0,
                })
                .unwrap();
        }
        let (_store, replayed) = JobStore::open(&dir).unwrap();
        assert_eq!(replayed.jobs.len(), 1);
        assert_eq!(replayed.next_id, 2);
        let job = &replayed.jobs[&1];
        // A job left Running by a crash is incomplete, not terminal.
        assert_eq!(job.state, JobState::Running);
        assert!(!job.is_terminal());
        assert_eq!(replayed.dropped_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        store
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: tiny_spec(),
            })
            .unwrap();
        store
            .append(&JournalRecord::State {
                id: 1,
                state: JobState::Running,
                retries: 0,
            })
            .unwrap();
        let path = store.journal_path();
        drop(store);
        // Tear the last record: cut the file mid-line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let (_store, replayed) = JobStore::open(&dir).unwrap();
        assert_eq!(replayed.records, 1);
        assert_eq!(replayed.dropped_records, 1);
        assert_eq!(replayed.jobs[&1].state, JobState::Queued);

        // Open compacted the torn journal: a fresh replay is fully valid.
        let (_store2, again) = JobStore::open(&dir).unwrap();
        assert_eq!(again.dropped_records, 0);
        assert_eq!(again.jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay_at_the_bad_line() {
        let dir = tmp_dir("corrupt");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        for id in 1..=3 {
            store
                .append(&JournalRecord::Submitted {
                    id,
                    spec: tiny_spec(),
                })
                .unwrap();
        }
        let path = store.journal_path();
        drop(store);
        // Flip a byte inside the second record's JSON body.
        let mut bytes = std::fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let target = line_starts[1] + 20;
        bytes[target] = bytes[target].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 1);
        assert_eq!(replayed.dropped_records, 2);
        assert_eq!(replayed.jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finished_record_without_state_is_reconciled_terminal() {
        let dir = tmp_dir("reconcile");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        store
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: tiny_spec(),
            })
            .unwrap();
        store
            .append(&JournalRecord::Finished {
                id: 1,
                outcome: None,
                error: Some(SearchError::Cancelled),
            })
            .unwrap();
        let replayed = store.replay_current().unwrap();
        assert_eq!(replayed.jobs[&1].state, JobState::Cancelled);
        assert!(replayed.jobs[&1].is_terminal());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_the_journal() {
        let dir = tmp_dir("compact");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        store
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: tiny_spec(),
            })
            .unwrap();
        for _ in 0..50 {
            store
                .append(&JournalRecord::Progress {
                    id: 1,
                    depth: 1,
                    rung: 0,
                })
                .unwrap();
        }
        store.append(&JournalRecord::CleanShutdown).unwrap();
        let before = std::fs::metadata(store.journal_path()).unwrap().len();
        let replayed = store.replay_current().unwrap();
        assert!(replayed.clean_shutdown);
        store.compact(&replayed, true).unwrap();
        let after = std::fs::metadata(store.journal_path()).unwrap().len();
        assert!(
            after < before,
            "compaction must shrink: {before} -> {after}"
        );

        let again = store.replay_current().unwrap();
        assert!(again.clean_shutdown);
        assert_eq!(again.jobs.len(), 1);
        assert_eq!(again.jobs[&1].state, JobState::Queued);
        // The store keeps appending fine after the rename.
        store.append(&JournalRecord::Forgotten { id: 1 }).unwrap();
        let last = store.replay_current().unwrap();
        assert!(last.jobs.is_empty());
        assert!(!last.clean_shutdown, "appends after shutdown mark it live");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forgotten_jobs_do_not_resurrect() {
        let dir = tmp_dir("forget");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        store
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: tiny_spec(),
            })
            .unwrap();
        store
            .append(&JournalRecord::Finished {
                id: 1,
                outcome: None,
                error: Some(SearchError::Cancelled),
            })
            .unwrap();
        store.append(&JournalRecord::Forgotten { id: 1 }).unwrap();
        let replayed = store.replay_current().unwrap();
        assert!(replayed.jobs.is_empty());
        assert_eq!(replayed.next_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_records_replay_and_survive_compaction() {
        use crate::search::{BestCandidate, SearchOutcome};
        let dir = tmp_dir("cache-records");
        let (mut store, _) = JobStore::open(&dir).unwrap();
        let outcome = SearchOutcome {
            problem: "maxcut".to_string(),
            best: BestCandidate {
                gates: Vec::new(),
                mixer_label: "('rx')".to_string(),
                depth: 1,
                energy: 0.0,
                approx_ratio: 0.0,
            },
            depth_results: Vec::new(),
            total_elapsed_seconds: 0.0,
            num_candidates_evaluated: 0,
            total_optimizer_evaluations: 0,
            full_budget_evaluations: 0,
            parallel_threads: None,
        };
        for key in [7u64, 9] {
            store
                .append(&JournalRecord::CachePut {
                    key,
                    canonical: format!("spec-{key}"),
                    outcome: outcome.clone(),
                })
                .unwrap();
        }
        // Re-putting key 7 moves it to the back; evicting 9 drops it.
        store
            .append(&JournalRecord::CachePut {
                key: 7,
                canonical: "spec-7".to_string(),
                outcome: outcome.clone(),
            })
            .unwrap();
        store.append(&JournalRecord::CacheEvict { key: 9 }).unwrap();
        let replayed = store.replay_current().unwrap();
        assert_eq!(replayed.cache.len(), 1);
        assert_eq!(replayed.cache[0].key, 7);
        assert_eq!(replayed.cache[0].canonical, "spec-7");

        store.compact(&replayed, true).unwrap();
        let again = store.replay_current().unwrap();
        assert_eq!(again.cache.len(), 1);
        assert_eq!(again.cache[0].key, 7);
        assert!(again.clean_shutdown);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_fault_surfaces_as_store_or_transient_error() {
        use crate::fault::{FaultInjector, FaultPlan};
        let dir = tmp_dir("fault");
        let injector = FaultInjector::new(FaultPlan::io_error_at(site::STORE_APPEND, 1, "boom"));
        let ctx = FaultContext::new(injector, None);
        let (mut store, _) = JobStore::open_with_faults(&dir, Some(ctx)).unwrap();
        let err = store
            .append(&JournalRecord::CleanShutdown)
            .expect_err("first append is armed to fail");
        assert!(err.is_transient());
        // The next append goes through — the fault was a one-shot.
        store.append(&JournalRecord::CleanShutdown).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
