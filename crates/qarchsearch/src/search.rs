//! The search schedulers: Algorithm 1, serially and in parallel.
//!
//! [`SerialSearch`] is a faithful transcription of Algorithm 1: for every
//! QAOA depth `p = 1..=p_max`, enumerate (or sample) candidate mixer gate
//! combinations, build and train each candidate, and keep the best performer.
//!
//! [`ParallelSearch`] implements the paper's speedup: "our focus was to
//! improve run time by searching multiple possible gate combinations in
//! parallel" (§3.1), i.e. the **outer** level of the two-level scheme of
//! Figs. 2–3. The original uses Python `multiprocessing.starmap_async` over
//! the CPUs of a Polaris node; here the candidate evaluations are dispatched
//! onto a dedicated Rayon thread pool whose size plays the role of "number of
//! cores" in Fig. 5. The **inner** level (per-edge tensor contractions inside
//! the evaluator) is controlled by the chosen [`qaoa::Backend`].

use crate::alphabet::GateAlphabet;
use crate::constraints::ConstraintSet;
use crate::error::SearchError;
use crate::evaluator::{CandidateResult, Evaluator, EvaluatorConfig};
use crate::predictor::{
    EpsilonGreedyPredictor, PolicyGradientPredictor, Predictor, RandomPredictor,
};
use crate::qbuilder::QBuilder;
use graphs::Graph;
use qcircuit::Gate;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How candidate gate combinations are proposed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SearchStrategy {
    /// Enumerate every ordered sequence of length `1..=k_max` (what the
    /// paper's profiling experiments time).
    #[default]
    Exhaustive,
    /// Random search (the paper's released algorithm): sample
    /// `samples_per_depth` sequences per depth, each of a random length in
    /// `1..=k_max`.
    Random {
        /// Number of candidates sampled per depth.
        samples_per_depth: usize,
    },
    /// ε-greedy bandit over per-slot gate choices.
    EpsilonGreedy {
        /// Number of candidates proposed per depth.
        samples_per_depth: usize,
        /// Exploration rate.
        epsilon: f64,
    },
    /// Softmax policy-gradient controller (the "DNN-based search" extension).
    PolicyGradient {
        /// Number of candidates proposed per depth.
        samples_per_depth: usize,
        /// REINFORCE learning rate.
        learning_rate: f64,
    },
}

/// Full configuration of a search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// The gate alphabet `A_R`.
    pub alphabet: GateAlphabet,
    /// Maximum QAOA depth `p_max` (depths `1..=p_max` are searched).
    pub max_depth: usize,
    /// Maximum number of gates per mixer (`K_max`).
    pub max_gates_per_mixer: usize,
    /// Candidate proposal strategy.
    pub strategy: SearchStrategy,
    /// Evaluator configuration (backend, optimizer, training budget).
    pub evaluator: EvaluatorConfig,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Size of the outer-level thread pool for [`ParallelSearch`]
    /// (`None` = Rayon's default, typically the number of logical cores).
    pub threads: Option<usize>,
    /// Admissibility constraints applied to every proposed candidate ("our
    /// software can also incorporate arbitrary constraints in the search
    /// procedure", §6 of the paper).
    pub constraints: ConstraintSet,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            alphabet: GateAlphabet::paper_default(),
            max_depth: 4,
            max_gates_per_mixer: 4,
            strategy: SearchStrategy::Exhaustive,
            evaluator: EvaluatorConfig::default(),
            seed: 0,
            threads: None,
            constraints: ConstraintSet::none(),
        }
    }
}

impl SearchConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder {
            config: SearchConfig::default(),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.max_depth == 0 {
            return Err(SearchError::InvalidConfig {
                message: "max_depth must be ≥ 1".into(),
            });
        }
        if self.max_gates_per_mixer == 0 {
            return Err(SearchError::InvalidConfig {
                message: "max_gates_per_mixer must be ≥ 1".into(),
            });
        }
        if self.evaluator.budget == 0 {
            return Err(SearchError::InvalidConfig {
                message: "optimizer budget must be ≥ 1".into(),
            });
        }
        if let Some(0) = self.threads {
            return Err(SearchError::InvalidConfig {
                message: "threads must be ≥ 1".into(),
            });
        }
        Ok(())
    }

    /// The candidate gate sequences explored at one depth.
    fn candidates_for_depth(&self, depth: usize) -> Vec<Vec<Gate>> {
        let k_max = self.max_gates_per_mixer;
        match &self.strategy {
            SearchStrategy::Exhaustive => self.alphabet.all_combinations_up_to(k_max),
            SearchStrategy::Random { samples_per_depth } => {
                let mut predictor = RandomPredictor::new(
                    self.alphabet.clone(),
                    self.seed.wrapping_add(depth as u64),
                );
                let mut rng_len = RandomPredictor::new(
                    self.alphabet.clone(),
                    self.seed.wrapping_add(1000 + depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|i| {
                        // Vary the sequence length deterministically from the
                        // auxiliary predictor's proposal length behaviour.
                        let len = 1 + (rng_len.propose(1)[0] as usize + i) % k_max;
                        predictor.propose(len)
                    })
                    .collect()
            }
            SearchStrategy::EpsilonGreedy {
                samples_per_depth, ..
            }
            | SearchStrategy::PolicyGradient {
                samples_per_depth, ..
            } => {
                // Learned predictors propose online inside the search loop;
                // here we only report the space size they will explore.
                let _ = samples_per_depth;
                Vec::new()
            }
        }
    }
}

/// Builder for [`SearchConfig`].
#[derive(Debug, Clone)]
pub struct SearchConfigBuilder {
    config: SearchConfig,
}

impl SearchConfigBuilder {
    /// Set the gate alphabet.
    pub fn alphabet(mut self, alphabet: GateAlphabet) -> Self {
        self.config.alphabet = alphabet;
        self
    }

    /// Set `p_max`.
    pub fn max_depth(mut self, p_max: usize) -> Self {
        self.config.max_depth = p_max;
        self
    }

    /// Set `K_max`.
    pub fn max_gates_per_mixer(mut self, k_max: usize) -> Self {
        self.config.max_gates_per_mixer = k_max;
        self
    }

    /// Set the proposal strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Set the evaluator's optimizer budget (paper default: 200).
    pub fn optimizer_budget(mut self, budget: usize) -> Self {
        self.config.evaluator.budget = budget;
        self
    }

    /// Set the evaluator backend.
    pub fn backend(mut self, backend: qaoa::Backend) -> Self {
        self.config.evaluator.backend = backend;
        self
    }

    /// Set the evaluator optimizer.
    pub fn optimizer(mut self, optimizer: optim::OptimizerKind) -> Self {
        self.config.evaluator.optimizer = optimizer;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the outer-level thread count for the parallel scheduler.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = Some(threads);
        self
    }

    /// Set the candidate admissibility constraints.
    pub fn constraints(mut self, constraints: ConstraintSet) -> Self {
        self.config.constraints = constraints;
        self
    }

    /// Finish building.
    pub fn build(self) -> SearchConfig {
        self.config
    }
}

/// The best mixer found by a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestCandidate {
    /// The gate sequence of the winning mixer.
    pub gates: Vec<Gate>,
    /// The paper-style label, e.g. `('rx', 'ry')`.
    pub mixer_label: String,
    /// Depth at which the winner was found.
    pub depth: usize,
    /// Mean trained energy over the training graphs.
    pub energy: f64,
    /// Mean approximation ratio over the training graphs.
    pub approx_ratio: f64,
}

/// Per-depth record of a search run (one point of Fig. 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthResult {
    /// The QAOA depth `p`.
    pub depth: usize,
    /// Every candidate evaluated at this depth.
    pub candidates: Vec<CandidateResult>,
    /// Wall-clock seconds spent on this depth.
    pub elapsed_seconds: f64,
    /// Best mean energy seen at this depth.
    pub best_energy: f64,
}

/// The outcome of a full search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The overall best mixer (`U_B^best` of Algorithm 1).
    pub best: BestCandidate,
    /// Per-depth details and timings.
    pub depth_results: Vec<DepthResult>,
    /// Total wall-clock seconds.
    pub total_elapsed_seconds: f64,
    /// Total number of candidate evaluations.
    pub num_candidates_evaluated: usize,
    /// Whether the parallel scheduler was used, and with how many threads.
    pub parallel_threads: Option<usize>,
}

impl SearchOutcome {
    fn from_depth_results(
        depth_results: Vec<DepthResult>,
        total_elapsed_seconds: f64,
        parallel_threads: Option<usize>,
    ) -> Result<SearchOutcome, SearchError> {
        let mut best: Option<BestCandidate> = None;
        let mut num_candidates_evaluated = 0;
        for dr in &depth_results {
            for cand in &dr.candidates {
                num_candidates_evaluated += 1;
                let is_better = best
                    .as_ref()
                    .map(|b| cand.mean_energy > b.energy)
                    .unwrap_or(true);
                if is_better {
                    best = Some(BestCandidate {
                        gates: parse_label_gates(&cand.mixer_label),
                        mixer_label: cand.mixer_label.clone(),
                        depth: cand.depth,
                        energy: cand.mean_energy,
                        approx_ratio: cand.mean_approx_ratio,
                    });
                }
            }
        }
        let best = best.ok_or(SearchError::Evaluation {
            message: "search evaluated no candidates".to_string(),
        })?;
        Ok(SearchOutcome {
            best,
            depth_results,
            total_elapsed_seconds,
            num_candidates_evaluated,
            parallel_threads,
        })
    }

    /// Wall-clock seconds spent at a given depth, if that depth was searched.
    pub fn elapsed_at_depth(&self, depth: usize) -> Option<f64> {
        self.depth_results
            .iter()
            .find(|d| d.depth == depth)
            .map(|d| d.elapsed_seconds)
    }
}

/// Recover the gate sequence from a mixer label like `('rx', 'ry')`.
fn parse_label_gates(label: &str) -> Vec<Gate> {
    label
        .trim_matches(|c| c == '(' || c == ')')
        .split(',')
        .filter_map(|part| {
            let name = part.trim().trim_matches('\'');
            if name.is_empty() {
                None
            } else {
                name.parse::<Gate>().ok()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------

/// Serial scheduler: Algorithm 1 exactly as written.
#[derive(Debug, Clone)]
pub struct SerialSearch {
    config: SearchConfig,
}

impl SerialSearch {
    /// A serial search with the given configuration.
    pub fn new(config: SearchConfig) -> SerialSearch {
        SerialSearch { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run the search over the training graphs.
    pub fn run(&self, graphs: &[Graph]) -> Result<SearchOutcome, SearchError> {
        self.config.validate()?;
        if graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        let builder = QBuilder::new(self.config.alphabet.clone());
        let evaluator = Evaluator::new(self.config.evaluator.clone());
        let total_start = Instant::now();
        let mut depth_results = Vec::with_capacity(self.config.max_depth);

        for depth in 1..=self.config.max_depth {
            let depth_start = Instant::now();
            let candidates = self.propose_candidates(depth);
            let mut results = Vec::with_capacity(candidates.len());
            for gates in &candidates {
                let mixer = builder.build_mixer(gates)?;
                results.push(evaluator.evaluate(graphs, &mixer, depth)?);
            }
            let best_energy = results
                .iter()
                .map(|r| r.mean_energy)
                .fold(f64::NEG_INFINITY, f64::max);
            depth_results.push(DepthResult {
                depth,
                candidates: results,
                elapsed_seconds: depth_start.elapsed().as_secs_f64(),
                best_energy,
            });
        }
        SearchOutcome::from_depth_results(depth_results, total_start.elapsed().as_secs_f64(), None)
    }

    /// Candidate sequences for one depth (learned strategies propose online,
    /// receiving feedback sequentially). Candidates that violate the
    /// configured [`ConstraintSet`] are filtered out before evaluation.
    fn propose_candidates(&self, depth: usize) -> Vec<Vec<Gate>> {
        let mut candidates = match &self.config.strategy {
            SearchStrategy::Exhaustive | SearchStrategy::Random { .. } => {
                self.config.candidates_for_depth(depth)
            }
            SearchStrategy::EpsilonGreedy {
                samples_per_depth,
                epsilon,
            } => {
                let mut predictor = EpsilonGreedyPredictor::new(
                    self.config.alphabet.clone(),
                    *epsilon,
                    self.config.seed.wrapping_add(depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|_| predictor.propose(self.config.max_gates_per_mixer))
                    .collect()
            }
            SearchStrategy::PolicyGradient {
                samples_per_depth,
                learning_rate,
            } => {
                let mut predictor = PolicyGradientPredictor::new(
                    self.config.alphabet.clone(),
                    *learning_rate,
                    self.config.seed.wrapping_add(depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|_| predictor.propose(self.config.max_gates_per_mixer))
                    .collect()
            }
        };
        self.config.constraints.filter(&mut candidates);
        candidates
    }
}

// ---------------------------------------------------------------------------

/// Parallel scheduler: the outer level of the two-level parallelization.
///
/// Candidate evaluations at each depth are distributed over a dedicated Rayon
/// thread pool; the pool size stands in for the "number of cores" axis of
/// Fig. 5.
#[derive(Debug, Clone)]
pub struct ParallelSearch {
    config: SearchConfig,
}

impl ParallelSearch {
    /// A parallel search with the given configuration.
    pub fn new(config: SearchConfig) -> ParallelSearch {
        ParallelSearch { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run the search over the training graphs.
    pub fn run(&self, graphs: &[Graph]) -> Result<SearchOutcome, SearchError> {
        self.config.validate()?;
        if graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        let builder = QBuilder::new(self.config.alphabet.clone());
        let evaluator = Evaluator::new(self.config.evaluator.clone());

        // Dedicated pool so the requested core count is honoured even when a
        // global Rayon pool already exists (important for Fig. 5's sweep).
        let pool = match self.config.threads {
            Some(n) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(|e| SearchError::InvalidConfig {
                        message: e.to_string(),
                    })?,
            ),
            None => None,
        };

        let total_start = Instant::now();
        let mut depth_results = Vec::with_capacity(self.config.max_depth);

        for depth in 1..=self.config.max_depth {
            let depth_start = Instant::now();
            let serial_helper = SerialSearch {
                config: self.config.clone(),
            };
            let candidates = serial_helper.propose_candidates(depth);

            let evaluate_all = || -> Result<Vec<CandidateResult>, SearchError> {
                candidates
                    .par_iter()
                    .map(|gates| {
                        let mixer = builder.build_mixer(gates)?;
                        evaluator.evaluate(graphs, &mixer, depth)
                    })
                    .collect()
            };
            let results = match &pool {
                Some(p) => p.install(evaluate_all)?,
                None => evaluate_all()?,
            };

            let best_energy = results
                .iter()
                .map(|r| r.mean_energy)
                .fold(f64::NEG_INFINITY, f64::max);
            depth_results.push(DepthResult {
                depth,
                candidates: results,
                elapsed_seconds: depth_start.elapsed().as_secs_f64(),
                best_energy,
            });
        }
        SearchOutcome::from_depth_results(
            depth_results,
            total_start.elapsed().as_secs_f64(),
            Some(
                self.config
                    .threads
                    .unwrap_or_else(rayon::current_num_threads),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaoa::Backend;

    fn tiny_config(strategy: SearchStrategy) -> SearchConfig {
        SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(2)
            .optimizer_budget(25)
            .backend(Backend::StateVector)
            .strategy(strategy)
            .seed(3)
            .build()
    }

    fn tiny_graphs() -> Vec<Graph> {
        vec![Graph::cycle(4), Graph::erdos_renyi(5, 0.6, 8)]
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = SearchConfig::builder()
            .max_depth(3)
            .max_gates_per_mixer(2)
            .optimizer_budget(50)
            .seed(9)
            .threads(4)
            .optimizer(optim::OptimizerKind::NelderMead)
            .backend(Backend::StateVector)
            .strategy(SearchStrategy::Random {
                samples_per_depth: 7,
            })
            .build();
        assert_eq!(cfg.max_depth, 3);
        assert_eq!(cfg.max_gates_per_mixer, 2);
        assert_eq!(cfg.evaluator.budget, 50);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, Some(4));
        assert_eq!(cfg.evaluator.optimizer, optim::OptimizerKind::NelderMead);
        assert_eq!(cfg.evaluator.backend, Backend::StateVector);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_degenerate_configs() {
        let mut cfg = SearchConfig::default();
        cfg.max_depth = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.max_gates_per_mixer = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.evaluator.budget = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.threads = Some(0);
        assert!(cfg.validate().is_err());
        assert!(SearchConfig::default().validate().is_ok());
    }

    #[test]
    fn serial_exhaustive_search_finds_a_mixing_winner() {
        let outcome = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive))
            .run(&tiny_graphs())
            .unwrap();
        // Space: 2 + 4 = 6 candidates at depth 1.
        assert_eq!(outcome.num_candidates_evaluated, 6);
        assert_eq!(outcome.depth_results.len(), 1);
        assert!(outcome.best.energy > 0.0);
        assert!(outcome.best.approx_ratio <= 1.0 + 1e-9);
        assert!(!outcome.best.gates.is_empty());
        assert!(outcome.total_elapsed_seconds > 0.0);
    }

    #[test]
    fn parallel_and_serial_exhaustive_find_the_same_best_energy() {
        let graphs = tiny_graphs();
        let serial = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive))
            .run(&graphs)
            .unwrap();
        let parallel = ParallelSearch::new(SearchConfig {
            threads: Some(2),
            ..tiny_config(SearchStrategy::Exhaustive)
        })
        .run(&graphs)
        .unwrap();
        assert_eq!(
            serial.num_candidates_evaluated,
            parallel.num_candidates_evaluated
        );
        assert!((serial.best.energy - parallel.best.energy).abs() < 1e-9);
        assert_eq!(serial.best.mixer_label, parallel.best.mixer_label);
        assert_eq!(parallel.parallel_threads, Some(2));
    }

    #[test]
    fn random_strategy_respects_sample_budget() {
        let cfg = tiny_config(SearchStrategy::Random {
            samples_per_depth: 4,
        });
        let outcome = SerialSearch::new(cfg).run(&tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 4);
    }

    #[test]
    fn no_graphs_is_rejected() {
        let s = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive));
        assert!(matches!(s.run(&[]), Err(SearchError::NoGraphs)));
        let p = ParallelSearch::new(tiny_config(SearchStrategy::Exhaustive));
        assert!(matches!(p.run(&[]), Err(SearchError::NoGraphs)));
    }

    #[test]
    fn best_candidate_gates_match_label() {
        let outcome = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive))
            .run(&tiny_graphs())
            .unwrap();
        let from_label = parse_label_gates(&outcome.best.mixer_label);
        assert_eq!(from_label, outcome.best.gates);
    }

    #[test]
    fn elapsed_at_depth_reports_only_searched_depths() {
        let outcome = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive))
            .run(&tiny_graphs())
            .unwrap();
        assert!(outcome.elapsed_at_depth(1).is_some());
        assert!(outcome.elapsed_at_depth(2).is_none());
    }

    #[test]
    fn parse_label_round_trip() {
        assert_eq!(parse_label_gates("('rx', 'ry')"), vec![Gate::RX, Gate::RY]);
        assert_eq!(parse_label_gates("('h')"), vec![Gate::H]);
        assert!(parse_label_gates("()").is_empty());
    }

    #[test]
    fn constraints_prune_the_candidate_space() {
        use crate::constraints::{Constraint, ConstraintSet};
        let graphs = tiny_graphs();
        let unconstrained = SerialSearch::new(tiny_config(SearchStrategy::Exhaustive))
            .run(&graphs)
            .unwrap();
        let mut constrained_cfg = tiny_config(SearchStrategy::Exhaustive);
        constrained_cfg.constraints = ConstraintSet::new(vec![Constraint::NoAdjacentDuplicates]);
        let constrained = SerialSearch::new(constrained_cfg).run(&graphs).unwrap();
        // {rx, ry} alphabet, k ≤ 2: 6 unconstrained candidates, the two
        // duplicated pairs (rx,rx) and (ry,ry) are pruned.
        assert_eq!(unconstrained.num_candidates_evaluated, 6);
        assert_eq!(constrained.num_candidates_evaluated, 4);
        // The winner still exists and respects the constraint.
        assert!(constrained.best.gates.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn constraints_that_reject_everything_surface_as_an_error() {
        use crate::constraints::{Constraint, ConstraintSet};
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        // The {rx, ry} alphabet cannot satisfy a "require H" constraint.
        cfg.constraints = ConstraintSet::new(vec![Constraint::RequireAnyOf(vec![Gate::H])]);
        let result = SerialSearch::new(cfg).run(&tiny_graphs());
        assert!(matches!(result, Err(SearchError::Evaluation { .. })));
    }

    #[test]
    fn epsilon_greedy_strategy_runs() {
        let cfg = tiny_config(SearchStrategy::EpsilonGreedy {
            samples_per_depth: 3,
            epsilon: 0.5,
        });
        let outcome = SerialSearch::new(cfg).run(&tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 3);
    }

    #[test]
    fn policy_gradient_strategy_runs() {
        let cfg = tiny_config(SearchStrategy::PolicyGradient {
            samples_per_depth: 3,
            learning_rate: 0.2,
        });
        let outcome = SerialSearch::new(cfg).run(&tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 3);
    }
}
