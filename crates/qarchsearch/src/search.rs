//! Search configuration and outcome types.
//!
//! The front door of the crate is now the session-oriented
//! [`crate::session::SearchDriver`]: one driver covers both execution modes
//! ([`ExecutionMode::Serial`] — Algorithm 1 exactly as written — and
//! [`ExecutionMode::Parallel`] — the budget-aware successive-halving
//! pipeline over the work-stealing executor), streams [`crate::SearchEvent`]s
//! while it runs, and supports cooperative cancellation and serde
//! checkpointing. This module keeps everything the driver is configured
//! with ([`SearchConfig`], [`SearchStrategy`], [`PipelineConfig`]) and
//! returns ([`SearchOutcome`], [`DepthResult`], [`BestCandidate`]).

use crate::constraints::ConstraintSet;
use crate::error::SearchError;
use crate::evaluator::{CandidateResult, EvaluatorConfig};
use crate::predictor::{
    EpsilonGreedyPredictor, PolicyGradientPredictor, Predictor, RandomPredictor,
};
use crate::GateAlphabet;
use qcircuit::Gate;
use serde::{Deserialize, Serialize};

/// How a search session executes its candidate evaluations.
///
/// Folded into [`SearchConfig`]; the session layer's
/// [`crate::session::SearchDriver`] reads it instead of the caller picking
/// between two scheduler structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionMode {
    /// Algorithm 1 exactly as written: one candidate at a time, full budget
    /// each, full inner (per-edge / kernel) parallelism.
    Serial,
    /// The budget-aware pipeline over the work-stealing executor:
    /// successive halving, warm starts, optional predictor gate.
    /// Bit-identical results for a fixed seed at any worker count.
    #[default]
    Parallel,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Serial => write!(f, "serial"),
            ExecutionMode::Parallel => write!(f, "parallel"),
        }
    }
}

/// How candidate gate combinations are proposed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SearchStrategy {
    /// Enumerate every ordered sequence of length `1..=k_max` (what the
    /// paper's profiling experiments time).
    #[default]
    Exhaustive,
    /// Random search (the paper's released algorithm): sample
    /// `samples_per_depth` sequences per depth, each of a random length in
    /// `1..=k_max`.
    Random {
        /// Number of candidates sampled per depth.
        samples_per_depth: usize,
    },
    /// ε-greedy bandit over per-slot gate choices.
    EpsilonGreedy {
        /// Number of candidates proposed per depth.
        samples_per_depth: usize,
        /// Exploration rate.
        epsilon: f64,
    },
    /// Softmax policy-gradient controller (the "DNN-based search" extension).
    PolicyGradient {
        /// Number of candidates proposed per depth.
        samples_per_depth: usize,
        /// REINFORCE learning rate.
        learning_rate: f64,
    },
}

/// Configuration of the budget-aware evaluation pipeline (successive
/// halving, warm starts, predictor gate) used by parallel-mode searches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Enable successive-halving pruning. When `false`, every candidate
    /// trains at the full budget in a single rung.
    pub prune: bool,
    /// Halving rate: each rung keeps the top `⌈entrants / eta⌉` candidates
    /// and multiplies the budget target by `eta` (must be ≥ 2).
    pub eta: usize,
    /// Cumulative optimizer-evaluation target of the first (cheapest) rung.
    pub first_rung: usize,
    /// Seed each depth-`p` candidate's initial angles from the best
    /// fully-trained depth-`p − 1` result (per-layer parameter reuse).
    pub warm_start: bool,
    /// Optional predictor gate: admit at most this many candidates into the
    /// first rung, ranked by a bandit trained on earlier depths' rewards.
    /// `None` disables the gate; it never engages at depth 1 (no feedback
    /// yet).
    pub predictor_gate: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            prune: true,
            eta: 4,
            first_rung: 20,
            warm_start: true,
            predictor_gate: None,
        }
    }
}

impl PipelineConfig {
    /// The paper-faithful configuration: no pruning, no warm starts, no
    /// gate — every candidate trains at the full budget from the default
    /// initial point, exactly like the paper's serial Algorithm 1.
    pub fn full_budget() -> PipelineConfig {
        PipelineConfig {
            prune: false,
            warm_start: false,
            predictor_gate: None,
            ..PipelineConfig::default()
        }
    }
}

/// Accounting for one successive-halving rung of one depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RungStat {
    /// Cumulative per-session optimizer-evaluation target of this rung.
    pub target_budget: usize,
    /// Candidates that entered the rung.
    pub entrants: usize,
    /// Candidates promoted out of the rung.
    pub survivors: usize,
    /// Objective evaluations actually spent in this rung (all sessions).
    pub evaluations: usize,
}

/// Full configuration of a search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Serial or parallel candidate evaluation (read by the session layer's
    /// [`crate::session::SearchDriver`]).
    pub mode: ExecutionMode,
    /// The gate alphabet `A_R`.
    pub alphabet: GateAlphabet,
    /// Maximum QAOA depth `p_max` (depths `1..=p_max` are searched).
    pub max_depth: usize,
    /// Maximum number of gates per mixer (`K_max`).
    pub max_gates_per_mixer: usize,
    /// Candidate proposal strategy.
    pub strategy: SearchStrategy,
    /// Evaluator configuration (backend, optimizer, training budget).
    pub evaluator: EvaluatorConfig,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Size of the outer-level thread pool in parallel mode
    /// (`None` = Rayon's default, typically the number of logical cores).
    pub threads: Option<usize>,
    /// Admissibility constraints applied to every proposed candidate ("our
    /// software can also incorporate arbitrary constraints in the search
    /// procedure", §6 of the paper).
    pub constraints: ConstraintSet,
    /// Budget-aware pipeline settings (pruning, warm starts, predictor
    /// gate) for parallel mode. Serial mode ignores this and always runs
    /// the paper-faithful full-budget loop.
    pub pipeline: PipelineConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            mode: ExecutionMode::Parallel,
            alphabet: GateAlphabet::paper_default(),
            max_depth: 4,
            max_gates_per_mixer: 4,
            strategy: SearchStrategy::Exhaustive,
            evaluator: EvaluatorConfig::default(),
            seed: 0,
            threads: None,
            constraints: ConstraintSet::none(),
            pipeline: PipelineConfig::default(),
        }
    }
}

impl SearchConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder {
            config: SearchConfig::default(),
        }
    }

    /// The same configuration with a different [`ExecutionMode`] —
    /// convenient when one config drives both a serial and a parallel run.
    pub fn with_mode(mut self, mode: ExecutionMode) -> SearchConfig {
        self.mode = mode;
        self
    }

    /// Validate the configuration for the budget-aware pipeline: the
    /// mode-independent base checks plus the pipeline settings (halving
    /// schedule, predictor gate). Serial runs only apply the base checks,
    /// since they never prune — see [`SearchConfig::validate_for`].
    pub fn validate(&self) -> Result<(), SearchError> {
        self.validate_base()?;
        self.validate_pipeline()
    }

    /// The checks the given execution mode actually needs: serial runs skip
    /// the pipeline checks (they never prune, so a budget below the halving
    /// schedule's first rung is fine there).
    pub fn validate_for(&self, mode: ExecutionMode) -> Result<(), SearchError> {
        match mode {
            ExecutionMode::Serial => self.validate_base(),
            ExecutionMode::Parallel => self.validate(),
        }
    }

    /// The mode-independent checks.
    fn validate_base(&self) -> Result<(), SearchError> {
        if self.max_depth == 0 {
            return Err(SearchError::InvalidConfig {
                message: "max_depth must be ≥ 1".into(),
            });
        }
        if self.max_gates_per_mixer == 0 {
            return Err(SearchError::InvalidConfig {
                message: "max_gates_per_mixer must be ≥ 1".into(),
            });
        }
        if self.evaluator.budget == 0 {
            return Err(SearchError::InvalidConfig {
                message: "optimizer budget must be ≥ 1 (use --budget to raise it)".into(),
            });
        }
        if let Some(0) = self.threads {
            return Err(SearchError::InvalidConfig {
                message: "threads must be ≥ 1".into(),
            });
        }
        Ok(())
    }

    /// The pipeline-only checks ([`ExecutionMode::Parallel`]).
    fn validate_pipeline(&self) -> Result<(), SearchError> {
        if self.pipeline.prune {
            if self.pipeline.eta < 2 {
                return Err(SearchError::InvalidConfig {
                    message: format!(
                        "halving rate eta must be ≥ 2 (got {}); eta = 1 would never prune",
                        self.pipeline.eta
                    ),
                });
            }
            if self.pipeline.first_rung == 0 {
                return Err(SearchError::InvalidConfig {
                    message: "the halving schedule's first rung must be ≥ 1".into(),
                });
            }
            if self.evaluator.budget < self.pipeline.first_rung {
                return Err(SearchError::InvalidConfig {
                    message: format!(
                        "optimizer budget ({}) is smaller than the halving schedule's first \
                         rung ({}); raise the budget, lower first_rung, or disable pruning \
                         with no_prune / --no-prune",
                        self.evaluator.budget, self.pipeline.first_rung
                    ),
                });
            }
        }
        if let Some(0) = self.pipeline.predictor_gate {
            return Err(SearchError::InvalidConfig {
                message: "predictor gate must admit at least one candidate".into(),
            });
        }
        Ok(())
    }

    /// Candidate sequences for one depth (learned strategies propose online,
    /// receiving feedback sequentially). Candidates that violate the
    /// configured [`ConstraintSet`] are filtered out before evaluation.
    /// Proposal is a pure function of `(self, depth)`, which is what makes
    /// checkpoint/resume bit-identical: a resumed run re-proposes exactly
    /// the cohorts the interrupted run would have seen.
    pub(crate) fn propose_candidates(&self, depth: usize) -> Vec<Vec<Gate>> {
        let mut candidates = match &self.strategy {
            SearchStrategy::Exhaustive | SearchStrategy::Random { .. } => {
                self.candidates_for_depth(depth)
            }
            SearchStrategy::EpsilonGreedy {
                samples_per_depth,
                epsilon,
            } => {
                let mut predictor = EpsilonGreedyPredictor::new(
                    self.alphabet.clone(),
                    *epsilon,
                    self.seed.wrapping_add(depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|_| predictor.propose(self.max_gates_per_mixer))
                    .collect()
            }
            SearchStrategy::PolicyGradient {
                samples_per_depth,
                learning_rate,
            } => {
                let mut predictor = PolicyGradientPredictor::new(
                    self.alphabet.clone(),
                    *learning_rate,
                    self.seed.wrapping_add(depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|_| predictor.propose(self.max_gates_per_mixer))
                    .collect()
            }
        };
        self.constraints.filter(&mut candidates);
        candidates
    }

    /// The candidate gate sequences explored at one depth.
    fn candidates_for_depth(&self, depth: usize) -> Vec<Vec<Gate>> {
        let k_max = self.max_gates_per_mixer;
        match &self.strategy {
            SearchStrategy::Exhaustive => self.alphabet.all_combinations_up_to(k_max),
            SearchStrategy::Random { samples_per_depth } => {
                let mut predictor = RandomPredictor::new(
                    self.alphabet.clone(),
                    self.seed.wrapping_add(depth as u64),
                );
                let mut rng_len = RandomPredictor::new(
                    self.alphabet.clone(),
                    self.seed.wrapping_add(1000 + depth as u64),
                );
                (0..*samples_per_depth)
                    .map(|i| {
                        // Vary the sequence length deterministically from the
                        // auxiliary predictor's proposal length behaviour.
                        let len = 1 + (rng_len.propose(1)[0] as usize + i) % k_max;
                        predictor.propose(len)
                    })
                    .collect()
            }
            SearchStrategy::EpsilonGreedy {
                samples_per_depth, ..
            }
            | SearchStrategy::PolicyGradient {
                samples_per_depth, ..
            } => {
                // Learned predictors propose online inside the search loop;
                // here we only report the space size they will explore.
                let _ = samples_per_depth;
                Vec::new()
            }
        }
    }
}

/// Builder for [`SearchConfig`].
#[derive(Debug, Clone)]
pub struct SearchConfigBuilder {
    config: SearchConfig,
}

impl SearchConfigBuilder {
    /// Set the execution mode (serial Algorithm 1 vs the parallel
    /// budget-aware pipeline; default parallel).
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Shorthand for [`mode(ExecutionMode::Serial)`](Self::mode).
    pub fn serial(self) -> Self {
        self.mode(ExecutionMode::Serial)
    }

    /// Set the gate alphabet.
    pub fn alphabet(mut self, alphabet: GateAlphabet) -> Self {
        self.config.alphabet = alphabet;
        self
    }

    /// Set `p_max`.
    pub fn max_depth(mut self, p_max: usize) -> Self {
        self.config.max_depth = p_max;
        self
    }

    /// Set `K_max`.
    pub fn max_gates_per_mixer(mut self, k_max: usize) -> Self {
        self.config.max_gates_per_mixer = k_max;
        self
    }

    /// Set the proposal strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Set the evaluator's optimizer budget (paper default: 200).
    pub fn optimizer_budget(mut self, budget: usize) -> Self {
        self.config.evaluator.budget = budget;
        self
    }

    /// Set the evaluator backend.
    pub fn backend(mut self, backend: qaoa::Backend) -> Self {
        self.config.evaluator.backend = backend;
        self
    }

    /// Set the evaluator optimizer.
    pub fn optimizer(mut self, optimizer: optim::OptimizerKind) -> Self {
        self.config.evaluator.optimizer = optimizer;
        self
    }

    /// Set the cost problem family candidates are trained on (default:
    /// the paper's Max-Cut).
    pub fn problem(mut self, problem: graphs::ProblemKind) -> Self {
        self.config.evaluator.problem = problem;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the outer-level thread count for the parallel scheduler.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = Some(threads);
        self
    }

    /// Set the candidate admissibility constraints.
    pub fn constraints(mut self, constraints: ConstraintSet) -> Self {
        self.config.constraints = constraints;
        self
    }

    /// Enable or disable successive-halving pruning.
    pub fn prune(mut self, prune: bool) -> Self {
        self.config.pipeline.prune = prune;
        self
    }

    /// The paper-faithful escape hatch: disable pruning, warm starts and the
    /// predictor gate so every candidate trains at the full budget from the
    /// default initial point — one flag away from the exhaustive search the
    /// paper released, and bit-identical to serial-mode results for
    /// registers below the kernel-parallel threshold
    /// (`QAS_PARALLEL_THRESHOLD`, default 14 qubits). At or above it,
    /// serial-mode kernels may split float reductions across threads
    /// while pipeline workers pin them to one, so energies can differ in
    /// the last bits.
    pub fn no_prune(mut self) -> Self {
        self.config.pipeline = PipelineConfig::full_budget();
        self
    }

    /// Set the halving schedule: the first rung's budget and the rate `eta`
    /// (budget × eta per rung, top `1/eta` promoted).
    pub fn halving(mut self, first_rung: usize, eta: usize) -> Self {
        self.config.pipeline.first_rung = first_rung;
        self.config.pipeline.eta = eta;
        self
    }

    /// Enable or disable warm-starting depth `p` from the best depth-`p − 1`
    /// angles.
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.config.pipeline.warm_start = warm_start;
        self
    }

    /// Admit at most `cap` candidates into the first rung, ranked by the
    /// learned predictor (engages from depth 2 on).
    pub fn predictor_gate(mut self, cap: usize) -> Self {
        self.config.pipeline.predictor_gate = Some(cap);
        self
    }

    /// Finish building.
    pub fn build(self) -> SearchConfig {
        self.config
    }
}

/// The best mixer found by a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestCandidate {
    /// The gate sequence of the winning mixer.
    pub gates: Vec<Gate>,
    /// The paper-style label, e.g. `('rx', 'ry')`.
    pub mixer_label: String,
    /// Depth at which the winner was found.
    pub depth: usize,
    /// Mean trained energy over the training graphs.
    pub energy: f64,
    /// Mean approximation ratio over the training graphs.
    pub approx_ratio: f64,
}

/// Per-depth record of a search run (one point of Fig. 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthResult {
    /// The QAOA depth `p`.
    pub depth: usize,
    /// Every candidate evaluated at this depth.
    pub candidates: Vec<CandidateResult>,
    /// Wall-clock seconds spent on this depth.
    pub elapsed_seconds: f64,
    /// Best mean energy seen at this depth.
    pub best_energy: f64,
    /// Successive-halving rung accounting (empty when pruning was off or
    /// the serial scheduler ran).
    pub rungs: Vec<RungStat>,
    /// Candidates rejected by the predictor gate before any evaluation.
    pub gated_out: usize,
}

/// The outcome of a full search run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The cost problem family the candidates were trained on.
    pub problem: String,
    /// The overall best mixer (`U_B^best` of Algorithm 1).
    pub best: BestCandidate,
    /// Per-depth details and timings.
    pub depth_results: Vec<DepthResult>,
    /// Total wall-clock seconds.
    pub total_elapsed_seconds: f64,
    /// Total number of candidate evaluations.
    pub num_candidates_evaluated: usize,
    /// Objective evaluations actually spent across every candidate, graph
    /// and rung.
    pub total_optimizer_evaluations: usize,
    /// What a full-budget (no pruning, no gate) evaluation of the same
    /// proposals would *nominally* have spent:
    /// `(evaluated + gated) × budget × graphs`, summed over depths. The
    /// ratio against
    /// [`total_optimizer_evaluations`](Self::total_optimizer_evaluations)
    /// is the pipeline's budget saving. Nominal because optimizers may
    /// converge below the budget or overshoot it by one atomic step, so
    /// the ratio can drift slightly around 1.0 even with pruning off.
    pub full_budget_evaluations: usize,
    /// Whether the parallel scheduler was used, and with how many threads.
    pub parallel_threads: Option<usize>,
}

impl SearchOutcome {
    pub(crate) fn from_depth_results(
        problem: String,
        depth_results: Vec<DepthResult>,
        total_elapsed_seconds: f64,
        parallel_threads: Option<usize>,
        budget: usize,
        num_graphs: usize,
    ) -> Result<SearchOutcome, SearchError> {
        let mut best: Option<BestCandidate> = None;
        let mut num_candidates_evaluated = 0;
        let mut total_optimizer_evaluations = 0;
        let mut full_budget_evaluations = 0;
        for dr in &depth_results {
            full_budget_evaluations += (dr.candidates.len() + dr.gated_out) * budget * num_graphs;
            for cand in &dr.candidates {
                num_candidates_evaluated += 1;
                total_optimizer_evaluations += cand.total_evaluations;
                let is_better = best
                    .as_ref()
                    .map(|b| cand.mean_energy > b.energy)
                    .unwrap_or(true);
                if is_better {
                    best = Some(BestCandidate {
                        gates: parse_label_gates(&cand.mixer_label),
                        mixer_label: cand.mixer_label.clone(),
                        depth: cand.depth,
                        energy: cand.mean_energy,
                        approx_ratio: cand.mean_approx_ratio,
                    });
                }
            }
        }
        let best = best.ok_or(SearchError::Evaluation {
            message: "search evaluated no candidates".to_string(),
        })?;
        Ok(SearchOutcome {
            problem,
            best,
            depth_results,
            total_elapsed_seconds,
            num_candidates_evaluated,
            total_optimizer_evaluations,
            full_budget_evaluations,
            parallel_threads,
        })
    }

    /// The factor by which the pipeline undercut the nominal full-budget
    /// evaluation cost (≈ 1.0 when nothing was pruned or gated; early
    /// optimizer convergence or atomic-step overshoot moves it slightly
    /// either side).
    pub fn budget_savings_factor(&self) -> f64 {
        if self.total_optimizer_evaluations == 0 {
            1.0
        } else {
            self.full_budget_evaluations as f64 / self.total_optimizer_evaluations as f64
        }
    }

    /// Wall-clock seconds spent at a given depth, if that depth was searched.
    pub fn elapsed_at_depth(&self, depth: usize) -> Option<f64> {
        self.depth_results
            .iter()
            .find(|d| d.depth == depth)
            .map(|d| d.elapsed_seconds)
    }
}

/// Recover the gate sequence from a mixer label like `('rx', 'ry')`.
fn parse_label_gates(label: &str) -> Vec<Gate> {
    label
        .trim_matches(|c| c == '(' || c == ')')
        .split(',')
        .filter_map(|part| {
            let name = part.trim().trim_matches('\'');
            if name.is_empty() {
                None
            } else {
                name.parse::<Gate>().ok()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SearchDriver;
    use graphs::Graph;
    use qaoa::Backend;

    fn tiny_config(strategy: SearchStrategy) -> SearchConfig {
        SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(2)
            .optimizer_budget(25)
            .backend(Backend::StateVector)
            .strategy(strategy)
            .seed(3)
            .build()
    }

    fn tiny_graphs() -> Vec<Graph> {
        vec![Graph::cycle(4), Graph::erdos_renyi(5, 0.6, 8)]
    }

    /// Run through the session driver in serial mode.
    fn serial_run(
        mut config: SearchConfig,
        graphs: &[Graph],
    ) -> Result<SearchOutcome, SearchError> {
        config.mode = ExecutionMode::Serial;
        SearchDriver::new(config).run(graphs)
    }

    /// Run through the session driver in parallel mode.
    fn parallel_run(
        mut config: SearchConfig,
        graphs: &[Graph],
    ) -> Result<SearchOutcome, SearchError> {
        config.mode = ExecutionMode::Parallel;
        SearchDriver::new(config).run(graphs)
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = SearchConfig::builder()
            .max_depth(3)
            .max_gates_per_mixer(2)
            .optimizer_budget(50)
            .seed(9)
            .threads(4)
            .optimizer(optim::OptimizerKind::NelderMead)
            .backend(Backend::StateVector)
            .strategy(SearchStrategy::Random {
                samples_per_depth: 7,
            })
            .build();
        assert_eq!(cfg.max_depth, 3);
        assert_eq!(cfg.max_gates_per_mixer, 2);
        assert_eq!(cfg.evaluator.budget, 50);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, Some(4));
        assert_eq!(cfg.evaluator.optimizer, optim::OptimizerKind::NelderMead);
        assert_eq!(cfg.evaluator.backend, Backend::StateVector);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_degenerate_configs() {
        let mut cfg = SearchConfig::default();
        cfg.max_depth = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.max_gates_per_mixer = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.evaluator.budget = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SearchConfig::default();
        cfg.threads = Some(0);
        assert!(cfg.validate().is_err());
        assert!(SearchConfig::default().validate().is_ok());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_degenerate_pipeline_configs() {
        // Budget smaller than the first rung (with pruning on).
        let mut cfg = SearchConfig::default();
        cfg.evaluator.budget = 10;
        cfg.pipeline.first_rung = 20;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("first"), "{err}");
        // ...but fine once pruning is off.
        cfg.pipeline.prune = false;
        assert!(cfg.validate().is_ok());

        let mut cfg = SearchConfig::default();
        cfg.pipeline.eta = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = SearchConfig::default();
        cfg.pipeline.first_rung = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SearchConfig::default();
        cfg.pipeline.predictor_gate = Some(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serial_search_ignores_pipeline_only_validation() {
        // Serial mode never prunes, so a budget below the halving
        // schedule's first rung must not block a cheap serial run.
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.evaluator.budget = 10;
        assert!(cfg.evaluator.budget < cfg.pipeline.first_rung);
        assert!(cfg.validate().is_err(), "pipeline validation still rejects");
        let outcome = serial_run(cfg.clone(), &tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 6);
        // The parallel pipeline keeps rejecting it with a clear message.
        assert!(parallel_run(cfg, &tiny_graphs()).is_err());
    }

    #[test]
    fn builder_pipeline_methods_set_every_field() {
        let cfg = SearchConfig::builder()
            .prune(true)
            .halving(12, 3)
            .warm_start(false)
            .predictor_gate(9)
            .build();
        assert!(cfg.pipeline.prune);
        assert_eq!(cfg.pipeline.first_rung, 12);
        assert_eq!(cfg.pipeline.eta, 3);
        assert!(!cfg.pipeline.warm_start);
        assert_eq!(cfg.pipeline.predictor_gate, Some(9));

        let faithful = SearchConfig::builder().no_prune().build();
        assert_eq!(faithful.pipeline, PipelineConfig::full_budget());
        assert!(!faithful.pipeline.prune);
        assert!(!faithful.pipeline.warm_start);
        assert_eq!(faithful.pipeline.predictor_gate, None);
    }

    #[test]
    fn serial_exhaustive_search_finds_a_mixing_winner() {
        let outcome = serial_run(tiny_config(SearchStrategy::Exhaustive), &tiny_graphs()).unwrap();
        // Space: 2 + 4 = 6 candidates at depth 1.
        assert_eq!(outcome.num_candidates_evaluated, 6);
        assert_eq!(outcome.depth_results.len(), 1);
        assert!(outcome.best.energy > 0.0);
        assert!(outcome.best.approx_ratio <= 1.0 + 1e-9);
        assert!(!outcome.best.gates.is_empty());
        assert!(outcome.total_elapsed_seconds > 0.0);
    }

    #[test]
    fn no_prune_parallel_matches_serial_bitwise() {
        // The paper-faithful escape hatch: with pruning, warm starts and the
        // gate disabled, the pipeline must reproduce the serial full-budget
        // search exactly — same winner, bit-identical energies, same budget.
        let graphs = tiny_graphs();
        let serial = serial_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        let parallel = parallel_run(
            SearchConfig {
                threads: Some(2),
                pipeline: PipelineConfig::full_budget(),
                ..tiny_config(SearchStrategy::Exhaustive)
            },
            &graphs,
        )
        .unwrap();
        assert_eq!(
            serial.num_candidates_evaluated,
            parallel.num_candidates_evaluated
        );
        assert_eq!(serial.best.energy, parallel.best.energy);
        assert_eq!(serial.best.mixer_label, parallel.best.mixer_label);
        assert_eq!(
            serial.total_optimizer_evaluations,
            parallel.total_optimizer_evaluations
        );
        for (ds, dp) in serial.depth_results.iter().zip(&parallel.depth_results) {
            for (cs, cp) in ds.candidates.iter().zip(&dp.candidates) {
                assert_eq!(cs.mean_energy, cp.mean_energy, "{}", cs.mixer_label);
                assert_eq!(cs.per_graph, cp.per_graph, "{}", cs.mixer_label);
            }
        }
        assert_eq!(parallel.parallel_threads, Some(2));
    }

    #[test]
    fn pruning_spends_less_budget_without_losing_the_winner() {
        let graphs = tiny_graphs();
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.evaluator.budget = 60;
        cfg.pipeline = PipelineConfig {
            prune: true,
            eta: 2,
            first_rung: 15,
            warm_start: false,
            predictor_gate: None,
        };
        let full = parallel_run(
            SearchConfig {
                pipeline: PipelineConfig::full_budget(),
                ..cfg.clone()
            },
            &graphs,
        )
        .unwrap();
        let pruned = parallel_run(cfg, &graphs).unwrap();

        assert!(
            pruned.total_optimizer_evaluations < full.total_optimizer_evaluations,
            "pruned {} vs full {}",
            pruned.total_optimizer_evaluations,
            full.total_optimizer_evaluations
        );
        assert!(pruned.budget_savings_factor() > 1.0);
        // The winner must stay competitive with the exhaustive result.
        assert!(
            pruned.best.energy >= full.best.energy - 0.05,
            "pruned best {} vs full best {}",
            pruned.best.energy,
            full.best.energy
        );
        // Some candidate was actually pruned, and its recorded rung exists.
        let pruned_candidates: Vec<_> = pruned
            .depth_results
            .iter()
            .flat_map(|d| &d.candidates)
            .filter(|c| c.pruned_at_rung.is_some())
            .collect();
        assert!(!pruned_candidates.is_empty());
        // Rung accounting is present and consistent.
        for d in &pruned.depth_results {
            assert!(!d.rungs.is_empty());
            assert!(d
                .rungs
                .windows(2)
                .all(|w| w[0].target_budget < w[1].target_budget));
            assert_eq!(d.rungs[0].entrants, d.candidates.len());
            let rung_total: usize = d.rungs.iter().map(|r| r.evaluations).sum();
            let cand_total: usize = d.candidates.iter().map(|c| c.total_evaluations).sum();
            assert_eq!(rung_total, cand_total);
        }
    }

    #[test]
    fn parallel_results_are_thread_count_independent() {
        // Work-stealing + per-worker scratch must not leak into results:
        // 1, 2 and 4 workers return bit-identical outcomes for a fixed seed.
        let graphs = tiny_graphs();
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.max_depth = 2;
        cfg.pipeline = PipelineConfig {
            prune: true,
            eta: 2,
            first_rung: 10,
            warm_start: true,
            predictor_gate: Some(4),
        };
        let reference = parallel_run(
            SearchConfig {
                threads: Some(1),
                ..cfg.clone()
            },
            &graphs,
        )
        .unwrap();
        for threads in [2usize, 4] {
            let other = parallel_run(
                SearchConfig {
                    threads: Some(threads),
                    ..cfg.clone()
                },
                &graphs,
            )
            .unwrap();
            assert_eq!(
                reference.best.energy, other.best.energy,
                "{threads} threads"
            );
            assert_eq!(reference.best.mixer_label, other.best.mixer_label);
            assert_eq!(
                reference.total_optimizer_evaluations,
                other.total_optimizer_evaluations
            );
            for (dr, do_) in reference.depth_results.iter().zip(&other.depth_results) {
                assert_eq!(dr.gated_out, do_.gated_out);
                assert_eq!(dr.rungs, do_.rungs);
                for (cr, co) in dr.candidates.iter().zip(&do_.candidates) {
                    assert_eq!(cr.mean_energy, co.mean_energy, "{}", cr.mixer_label);
                    assert_eq!(cr.per_graph, co.per_graph);
                    assert_eq!(cr.pruned_at_rung, co.pruned_at_rung);
                }
            }
        }
    }

    #[test]
    fn warm_start_does_not_hurt_deeper_depths() {
        let graphs = tiny_graphs();
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.max_depth = 2;
        cfg.evaluator.budget = 40;
        cfg.pipeline = PipelineConfig {
            prune: false,
            warm_start: true,
            ..PipelineConfig::default()
        };
        let warm = parallel_run(cfg.clone(), &graphs).unwrap();
        cfg.pipeline.warm_start = false;
        let cold = parallel_run(cfg, &graphs).unwrap();
        assert!(
            warm.best.energy >= cold.best.energy - 0.1,
            "warm {} vs cold {}",
            warm.best.energy,
            cold.best.energy
        );
    }

    #[test]
    fn predictor_gate_limits_entrants_from_depth_two() {
        let graphs = tiny_graphs();
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.max_depth = 2;
        cfg.evaluator.budget = 30;
        cfg.pipeline = PipelineConfig {
            prune: false,
            warm_start: false,
            predictor_gate: Some(3),
            ..PipelineConfig::default()
        };
        let outcome = parallel_run(cfg, &graphs).unwrap();
        // Depth 1: no feedback yet, the gate stays open (6 candidates).
        assert_eq!(outcome.depth_results[0].candidates.len(), 6);
        assert_eq!(outcome.depth_results[0].gated_out, 0);
        // Depth 2: only the top 3 by learned score are admitted.
        assert_eq!(outcome.depth_results[1].candidates.len(), 3);
        assert_eq!(outcome.depth_results[1].gated_out, 3);
    }

    #[test]
    fn multistart_configs_fall_back_to_legacy_evaluation() {
        let graphs = tiny_graphs();
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        cfg.evaluator.restarts = 3;
        cfg.evaluator.budget = 45;
        let outcome = parallel_run(cfg, &graphs).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 6);
        // The legacy path reports no rung accounting.
        assert!(outcome.depth_results.iter().all(|d| d.rungs.is_empty()));
    }

    #[test]
    fn search_runs_on_every_shipped_problem_family() {
        let graphs = vec![Graph::erdos_renyi(6, 0.5, 8)];
        for kind in graphs::ProblemKind::all(8) {
            let mut cfg = tiny_config(SearchStrategy::Exhaustive);
            cfg.evaluator.problem = kind.clone();
            let outcome = parallel_run(cfg, &graphs).unwrap();
            assert_eq!(outcome.problem, kind.name());
            assert!(outcome.best.energy.is_finite(), "{}", kind.name());
            assert!(
                outcome.best.approx_ratio <= 1.0 + 1e-9,
                "{}: ratio {}",
                kind.name(),
                outcome.best.approx_ratio
            );
            assert_eq!(outcome.num_candidates_evaluated, 6);
        }
    }

    #[test]
    fn outcome_reports_the_problem_name() {
        let outcome = serial_run(tiny_config(SearchStrategy::Exhaustive), &tiny_graphs()).unwrap();
        assert_eq!(outcome.problem, "maxcut");
        let report = crate::report::SearchReport::from(&outcome);
        assert_eq!(report.problem, "maxcut");
    }

    #[test]
    fn random_strategy_respects_sample_budget() {
        let cfg = tiny_config(SearchStrategy::Random {
            samples_per_depth: 4,
        });
        let outcome = serial_run(cfg, &tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 4);
    }

    #[test]
    fn no_graphs_is_rejected() {
        assert!(matches!(
            serial_run(tiny_config(SearchStrategy::Exhaustive), &[]),
            Err(SearchError::NoGraphs)
        ));
        assert!(matches!(
            parallel_run(tiny_config(SearchStrategy::Exhaustive), &[]),
            Err(SearchError::NoGraphs)
        ));
    }

    #[test]
    fn repeated_driver_runs_are_bitwise_identical_across_modes() {
        // Replaces the retired `SerialSearch`/`ParallelSearch` shim check:
        // the driver itself is the only entry point, and repeated runs in
        // either mode reproduce each other's outcome bit for bit.
        let graphs = tiny_graphs();
        let serial_a = serial_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        let serial_b = serial_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        assert_eq!(
            serial_a.best.energy.to_bits(),
            serial_b.best.energy.to_bits()
        );
        assert_eq!(serial_a.best.mixer_label, serial_b.best.mixer_label);

        let parallel_a = parallel_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        let parallel_b = parallel_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        assert_eq!(
            parallel_a.best.energy.to_bits(),
            parallel_b.best.energy.to_bits()
        );
        assert_eq!(
            parallel_a.total_optimizer_evaluations,
            parallel_b.total_optimizer_evaluations
        );
    }

    #[test]
    fn best_candidate_gates_match_label() {
        let outcome = serial_run(tiny_config(SearchStrategy::Exhaustive), &tiny_graphs()).unwrap();
        let from_label = parse_label_gates(&outcome.best.mixer_label);
        assert_eq!(from_label, outcome.best.gates);
    }

    #[test]
    fn elapsed_at_depth_reports_only_searched_depths() {
        let outcome = serial_run(tiny_config(SearchStrategy::Exhaustive), &tiny_graphs()).unwrap();
        assert!(outcome.elapsed_at_depth(1).is_some());
        assert!(outcome.elapsed_at_depth(2).is_none());
    }

    #[test]
    fn parse_label_round_trip() {
        assert_eq!(parse_label_gates("('rx', 'ry')"), vec![Gate::RX, Gate::RY]);
        assert_eq!(parse_label_gates("('h')"), vec![Gate::H]);
        assert!(parse_label_gates("()").is_empty());
    }

    #[test]
    fn constraints_prune_the_candidate_space() {
        use crate::constraints::{Constraint, ConstraintSet};
        let graphs = tiny_graphs();
        let unconstrained = serial_run(tiny_config(SearchStrategy::Exhaustive), &graphs).unwrap();
        let mut constrained_cfg = tiny_config(SearchStrategy::Exhaustive);
        constrained_cfg.constraints = ConstraintSet::new(vec![Constraint::NoAdjacentDuplicates]);
        let constrained = serial_run(constrained_cfg, &graphs).unwrap();
        // {rx, ry} alphabet, k ≤ 2: 6 unconstrained candidates, the two
        // duplicated pairs (rx,rx) and (ry,ry) are pruned.
        assert_eq!(unconstrained.num_candidates_evaluated, 6);
        assert_eq!(constrained.num_candidates_evaluated, 4);
        // The winner still exists and respects the constraint.
        assert!(constrained.best.gates.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn constraints_that_reject_everything_surface_as_an_error() {
        use crate::constraints::{Constraint, ConstraintSet};
        let mut cfg = tiny_config(SearchStrategy::Exhaustive);
        // The {rx, ry} alphabet cannot satisfy a "require H" constraint.
        cfg.constraints = ConstraintSet::new(vec![Constraint::RequireAnyOf(vec![Gate::H])]);
        let result = serial_run(cfg, &tiny_graphs());
        assert!(matches!(result, Err(SearchError::Evaluation { .. })));
    }

    #[test]
    fn epsilon_greedy_strategy_runs() {
        let cfg = tiny_config(SearchStrategy::EpsilonGreedy {
            samples_per_depth: 3,
            epsilon: 0.5,
        });
        let outcome = serial_run(cfg, &tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 3);
    }

    #[test]
    fn policy_gradient_strategy_runs() {
        let cfg = tiny_config(SearchStrategy::PolicyGradient {
            samples_per_depth: 3,
            learning_rate: 0.2,
        });
        let outcome = serial_run(cfg, &tiny_graphs()).unwrap();
        assert_eq!(outcome.num_candidates_evaluated, 3);
    }
}
