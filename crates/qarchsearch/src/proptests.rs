//! Property-based tests for the search package.

use crate::alphabet::GateAlphabet;
use crate::encoding::CircuitEncoding;
use crate::predictor::{ExhaustivePredictor, Predictor, RandomPredictor};
use crate::search::{SearchConfig, SearchStrategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn combination_counts_match_enumeration(k in 1usize..4, size in 2usize..5) {
        let mnemonics = ["rx", "ry", "rz", "h", "p"];
        let alphabet = GateAlphabet::from_mnemonics(&mnemonics[..size]).unwrap();
        let combos = alphabet.combinations(k);
        prop_assert_eq!(combos.len(), alphabet.combination_count(k));
        // Each combination has exactly k gates from the alphabet.
        for c in &combos {
            prop_assert_eq!(c.len(), k);
            for g in c {
                prop_assert!(alphabet.position(*g).is_some());
            }
        }
        // All combinations are distinct.
        let unique: std::collections::BTreeSet<String> =
            combos.iter().map(|c| format!("{c:?}")).collect();
        prop_assert_eq!(unique.len(), combos.len());
    }

    #[test]
    fn encode_decode_is_identity(positions in proptest::collection::vec(0usize..5, 1..5)) {
        let alphabet = GateAlphabet::paper_default();
        let enc = CircuitEncoding::from_positions(&alphabet, &positions).unwrap();
        let gates = enc.decode(&alphabet).unwrap();
        let re_enc = CircuitEncoding::encode(&alphabet, &gates).unwrap();
        prop_assert_eq!(enc, re_enc);
    }

    #[test]
    fn random_predictor_only_uses_alphabet_gates(seed in any::<u64>(), k in 1usize..5) {
        let alphabet = GateAlphabet::from_mnemonics(&["rx", "h", "p"]).unwrap();
        let mut p = RandomPredictor::new(alphabet.clone(), seed);
        let seq = p.propose(k);
        prop_assert_eq!(seq.len(), k);
        for g in seq {
            prop_assert!(alphabet.position(g).is_some());
        }
    }

    #[test]
    fn exhaustive_predictor_covers_space_without_repeats(k in 1usize..3, size in 2usize..4) {
        let mnemonics = ["rx", "ry", "rz", "h"];
        let alphabet = GateAlphabet::from_mnemonics(&mnemonics[..size]).unwrap();
        let mut p = ExhaustivePredictor::new(alphabet);
        let total = p.space_size(k);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..total {
            seen.insert(format!("{:?}", p.propose(k)));
        }
        prop_assert_eq!(seen.len(), total);
    }

    #[test]
    fn candidate_space_size_formula(p_max in 1usize..5, k in 1usize..4) {
        let alphabet = GateAlphabet::paper_default();
        prop_assert_eq!(alphabet.search_space_size(p_max, k), p_max * 5usize.pow(k as u32));
    }

    #[test]
    fn config_validation_accepts_sane_configs(
        depth in 1usize..5,
        k in 1usize..5,
        budget in 1usize..300,
        threads in 1usize..64,
    ) {
        let cfg = SearchConfig::builder()
            .max_depth(depth)
            .max_gates_per_mixer(k)
            .optimizer_budget(budget)
            .threads(threads)
            .strategy(SearchStrategy::Random { samples_per_depth: 5 })
            .build();
        prop_assert!(cfg.validate().is_ok());
    }
}
