//! Property-based tests for the search package.

use crate::alphabet::GateAlphabet;
use crate::encoding::CircuitEncoding;
use crate::predictor::{ExhaustivePredictor, Predictor, RandomPredictor};
use crate::search::{ExecutionMode, SearchConfig, SearchOutcome, SearchStrategy};
use crate::session::SearchDriver;
use proptest::prelude::*;

/// Run a configuration through the session driver in parallel mode.
fn parallel_run(
    mut config: SearchConfig,
    graphs: &[graphs::Graph],
) -> Result<SearchOutcome, crate::SearchError> {
    config.mode = ExecutionMode::Parallel;
    SearchDriver::new(config).run(graphs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn combination_counts_match_enumeration(k in 1usize..4, size in 2usize..5) {
        let mnemonics = ["rx", "ry", "rz", "h", "p"];
        let alphabet = GateAlphabet::from_mnemonics(&mnemonics[..size]).unwrap();
        let combos = alphabet.combinations(k);
        prop_assert_eq!(combos.len(), alphabet.combination_count(k));
        // Each combination has exactly k gates from the alphabet.
        for c in &combos {
            prop_assert_eq!(c.len(), k);
            for g in c {
                prop_assert!(alphabet.position(*g).is_some());
            }
        }
        // All combinations are distinct.
        let unique: std::collections::BTreeSet<String> =
            combos.iter().map(|c| format!("{c:?}")).collect();
        prop_assert_eq!(unique.len(), combos.len());
    }

    #[test]
    fn encode_decode_is_identity(positions in proptest::collection::vec(0usize..5, 1..5)) {
        let alphabet = GateAlphabet::paper_default();
        let enc = CircuitEncoding::from_positions(&alphabet, &positions).unwrap();
        let gates = enc.decode(&alphabet).unwrap();
        let re_enc = CircuitEncoding::encode(&alphabet, &gates).unwrap();
        prop_assert_eq!(enc, re_enc);
    }

    #[test]
    fn random_predictor_only_uses_alphabet_gates(seed in any::<u64>(), k in 1usize..5) {
        let alphabet = GateAlphabet::from_mnemonics(&["rx", "h", "p"]).unwrap();
        let mut p = RandomPredictor::new(alphabet.clone(), seed);
        let seq = p.propose(k);
        prop_assert_eq!(seq.len(), k);
        for g in seq {
            prop_assert!(alphabet.position(g).is_some());
        }
    }

    #[test]
    fn exhaustive_predictor_covers_space_without_repeats(k in 1usize..3, size in 2usize..4) {
        let mnemonics = ["rx", "ry", "rz", "h"];
        let alphabet = GateAlphabet::from_mnemonics(&mnemonics[..size]).unwrap();
        let mut p = ExhaustivePredictor::new(alphabet);
        let total = p.space_size(k);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..total {
            seen.insert(format!("{:?}", p.propose(k)));
        }
        prop_assert_eq!(seen.len(), total);
    }

    #[test]
    fn candidate_space_size_formula(p_max in 1usize..5, k in 1usize..4) {
        let alphabet = GateAlphabet::paper_default();
        prop_assert_eq!(alphabet.search_space_size(p_max, k), p_max * 5usize.pow(k as u32));
    }

    #[test]
    fn config_validation_accepts_sane_configs(
        depth in 1usize..5,
        k in 1usize..5,
        budget in 1usize..300,
        threads in 1usize..64,
    ) {
        let builder = || SearchConfig::builder()
            .max_depth(depth)
            .max_gates_per_mixer(k)
            .optimizer_budget(budget)
            .threads(threads)
            .strategy(SearchStrategy::Random { samples_per_depth: 5 });
        let cfg = builder().build();
        if budget >= cfg.pipeline.first_rung {
            prop_assert!(cfg.validate().is_ok());
        } else {
            // A budget below the halving schedule's first rung is rejected
            // while pruning is on, and accepted in full-budget mode.
            prop_assert!(cfg.validate().is_err());
            prop_assert!(builder().no_prune().build().validate().is_ok());
            prop_assert!(builder().halving(budget, 4).build().validate().is_ok());
        }
    }
}

proptest! {
    // Full pipeline runs are comparatively expensive; a handful of random
    // seeds exercises the determinism claim without dominating `cargo test`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The work-stealing pipeline (halving + warm starts + seeded SPSA) must
    /// return bit-identical winners and energies with 1, 2 and 4 threads,
    /// whatever the seed.
    #[test]
    fn parallel_search_is_thread_count_independent(seed in any::<u64>()) {
        let graphs = vec![
            graphs::Graph::cycle(5),
            graphs::Graph::erdos_renyi(6, 0.5, seed.wrapping_add(1)),
        ];
        let base = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap())
            .max_depth(2)
            .max_gates_per_mixer(2)
            .optimizer_budget(24)
            .halving(8, 2)
            .optimizer(optim::OptimizerKind::Spsa)
            .backend(qaoa::Backend::StateVector)
            .seed(seed)
            .build();
        let reference = parallel_run(SearchConfig {
            threads: Some(1),
            ..base.clone()
        }, &graphs)
        .unwrap();
        for threads in [2usize, 4] {
            let other = parallel_run(SearchConfig {
                threads: Some(threads),
                ..base.clone()
            }, &graphs)
            .unwrap();
            prop_assert_eq!(reference.best.mixer_label.clone(), other.best.mixer_label);
            prop_assert_eq!(reference.best.energy, other.best.energy);
            prop_assert_eq!(
                reference.total_optimizer_evaluations,
                other.total_optimizer_evaluations
            );
            for (dr, do_) in reference.depth_results.iter().zip(&other.depth_results) {
                prop_assert_eq!(&dr.rungs, &do_.rungs);
                for (cr, co) in dr.candidates.iter().zip(&do_.candidates) {
                    prop_assert_eq!(cr.mean_energy, co.mean_energy);
                    prop_assert_eq!(&cr.per_graph, &co.per_graph);
                }
            }
        }
    }
}
