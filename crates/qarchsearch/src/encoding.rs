//! Tensor encodings of candidate circuits.
//!
//! The paper's Predictor module "accepts a tensor that represents the
//! rotation gates and entanglement operators and generates a new circuit
//! representation that is passed to the quantum builder module". This module
//! defines that representation: a one-hot matrix of shape
//! `(sequence length × |A_R|)`, one row per mixer-gate slot. The encoding is
//! what predictors manipulate and what the QBuilder decodes back into a gate
//! sequence.

use crate::alphabet::GateAlphabet;
use crate::error::SearchError;
use qcircuit::Gate;
use serde::{Deserialize, Serialize};

/// A one-hot encoding of an ordered mixer gate sequence over an alphabet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitEncoding {
    /// `rows[i][j] = 1.0` iff slot `i` holds alphabet gate `j`.
    rows: Vec<Vec<f64>>,
    /// Alphabet size (row width).
    alphabet_size: usize,
}

impl CircuitEncoding {
    /// Encode a gate sequence over `alphabet` as a one-hot matrix.
    pub fn encode(alphabet: &GateAlphabet, gates: &[Gate]) -> Result<CircuitEncoding, SearchError> {
        if gates.is_empty() {
            return Err(SearchError::InvalidEncoding {
                message: "cannot encode an empty gate sequence".to_string(),
            });
        }
        let mut rows = Vec::with_capacity(gates.len());
        for &g in gates {
            let pos = alphabet
                .position(g)
                .ok_or_else(|| SearchError::InvalidEncoding {
                    message: format!("gate {g} is not in the alphabet {alphabet}"),
                })?;
            let mut row = vec![0.0; alphabet.len()];
            row[pos] = 1.0;
            rows.push(row);
        }
        Ok(CircuitEncoding {
            rows,
            alphabet_size: alphabet.len(),
        })
    }

    /// Build an encoding directly from alphabet positions.
    pub fn from_positions(
        alphabet: &GateAlphabet,
        positions: &[usize],
    ) -> Result<CircuitEncoding, SearchError> {
        if positions.is_empty() {
            return Err(SearchError::InvalidEncoding {
                message: "cannot encode an empty position sequence".to_string(),
            });
        }
        let mut rows = Vec::with_capacity(positions.len());
        for &p in positions {
            if p >= alphabet.len() {
                return Err(SearchError::InvalidEncoding {
                    message: format!(
                        "position {p} out of range for alphabet of size {}",
                        alphabet.len()
                    ),
                });
            }
            let mut row = vec![0.0; alphabet.len()];
            row[p] = 1.0;
            rows.push(row);
        }
        Ok(CircuitEncoding {
            rows,
            alphabet_size: alphabet.len(),
        })
    }

    /// Decode back into a gate sequence (argmax per row).
    pub fn decode(&self, alphabet: &GateAlphabet) -> Result<Vec<Gate>, SearchError> {
        if alphabet.len() != self.alphabet_size {
            return Err(SearchError::InvalidEncoding {
                message: format!(
                    "encoding width {} does not match alphabet size {}",
                    self.alphabet_size,
                    alphabet.len()
                ),
            });
        }
        self.rows
            .iter()
            .map(|row| {
                let (best, _) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .ok_or_else(|| SearchError::InvalidEncoding {
                        message: "empty encoding row".to_string(),
                    })?;
                alphabet.gate_at(best).map(|g| g.gate()).ok_or_else(|| {
                    SearchError::InvalidEncoding {
                        message: format!("row argmax {best} outside alphabet"),
                    }
                })
            })
            .collect()
    }

    /// Number of gate slots (rows).
    pub fn num_slots(&self) -> usize {
        self.rows.len()
    }

    /// Alphabet size (row width).
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// The raw one-hot matrix.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Flatten into a single feature vector (what a neural predictor would
    /// consume).
    pub fn flatten(&self) -> Vec<f64> {
        self.rows.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let alphabet = GateAlphabet::paper_default();
        let gates = vec![Gate::RX, Gate::RY, Gate::H];
        let enc = CircuitEncoding::encode(&alphabet, &gates).unwrap();
        assert_eq!(enc.num_slots(), 3);
        assert_eq!(enc.alphabet_size(), 5);
        assert_eq!(enc.decode(&alphabet).unwrap(), gates);
    }

    #[test]
    fn rows_are_one_hot() {
        let alphabet = GateAlphabet::paper_default();
        let enc = CircuitEncoding::encode(&alphabet, &[Gate::P, Gate::RZ]).unwrap();
        for row in enc.rows() {
            let ones = row.iter().filter(|&&v| v == 1.0).count();
            let zeros = row.iter().filter(|&&v| v == 0.0).count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, row.len() - 1);
        }
    }

    #[test]
    fn gate_outside_alphabet_is_rejected() {
        let alphabet = GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap();
        assert!(CircuitEncoding::encode(&alphabet, &[Gate::H]).is_err());
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let alphabet = GateAlphabet::paper_default();
        assert!(CircuitEncoding::encode(&alphabet, &[]).is_err());
        assert!(CircuitEncoding::from_positions(&alphabet, &[]).is_err());
    }

    #[test]
    fn from_positions_validates_range() {
        let alphabet = GateAlphabet::paper_default();
        assert!(CircuitEncoding::from_positions(&alphabet, &[0, 4]).is_ok());
        assert!(CircuitEncoding::from_positions(&alphabet, &[5]).is_err());
    }

    #[test]
    fn decode_checks_alphabet_width() {
        let a5 = GateAlphabet::paper_default();
        let a2 = GateAlphabet::from_mnemonics(&["rx", "ry"]).unwrap();
        let enc = CircuitEncoding::encode(&a5, &[Gate::RX]).unwrap();
        assert!(enc.decode(&a2).is_err());
    }

    #[test]
    fn flatten_length() {
        let alphabet = GateAlphabet::paper_default();
        let enc = CircuitEncoding::encode(&alphabet, &[Gate::RX, Gate::RY]).unwrap();
        assert_eq!(enc.flatten().len(), 10);
    }
}
