//! The typed event stream emitted by a running search session.
//!
//! Every [`crate::session::SearchDriver`] run narrates its progress as a
//! sequence of [`SearchEvent`]s delivered over an mpsc channel (see
//! [`crate::session::SearchHandle::events`]). The stream is **deterministic
//! for a fixed seed**: events are emitted from the driver thread at
//! deterministic points of the depth/rung loop (never from inside the
//! work-stealing workers), and carry no wall-clock timestamps — two runs of
//! the same configuration produce byte-identical streams regardless of the
//! worker thread count. Timings live on [`crate::search::SearchOutcome`]
//! and the progress snapshots instead.
//!
//! The same stream is what the [`crate::server::JobServer`] records per job
//! and what `qas serve` replays to protocol clients, so mid-run telemetry
//! (the raw material for surrogate predictors and kill-doomed-runs
//! schedulers) is available without waiting for the final outcome.
//!
//! **Durability semantics.** The in-memory event log is *not* journaled by
//! the durable store ([`crate::store`]): after a crash and restart, a
//! recovered job's log restarts from its resume point (a fresh `Started`
//! with `start_depth` past the checkpointed depths), and a job recovered
//! already-terminal carries its journaled result but an empty log. The
//! server may also append events the engine never emitted: a synthetic
//! [`SearchEvent::Failed`] closes the log when a job panics or exhausts
//! its transient-failure retries, and a retried job concatenates the
//! streams of its attempts (each attempt ends in a terminal event).

use crate::search::ExecutionMode;
use serde::{Deserialize, Serialize};

/// One step of a search session's lifecycle.
///
/// Serialized (externally tagged, like every enum in the suite) into the
/// `qas serve` events stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchEvent {
    /// The session started executing.
    Started {
        /// Problem family being trained.
        problem: String,
        /// Serial or parallel execution.
        mode: ExecutionMode,
        /// Deepest QAOA depth that will be searched.
        max_depth: usize,
        /// First depth this run evaluates (> 1 when resumed from a
        /// checkpoint).
        start_depth: usize,
        /// Number of training graphs.
        num_graphs: usize,
    },
    /// A depth's candidate cohort was proposed and evaluation is beginning.
    DepthStarted {
        /// The QAOA depth `p`.
        depth: usize,
        /// Candidates proposed (before the predictor gate).
        proposed: usize,
    },
    /// The predictor gate rejected part of the cohort before evaluation.
    CandidatesGated {
        /// The QAOA depth `p`.
        depth: usize,
        /// Candidates admitted into the first rung.
        admitted: usize,
        /// Candidates rejected without any evaluation.
        gated_out: usize,
    },
    /// One per-graph training session finished a rung advance (sourced from
    /// the [`qaoa::TrainingSession`] progress hooks, reported in
    /// deterministic session order).
    SessionAdvanced {
        /// The QAOA depth `p`.
        depth: usize,
        /// Candidate index within the admitted cohort (proposal order).
        candidate: usize,
        /// Graph index within the training set.
        graph: usize,
        /// Cumulative objective evaluations this session has consumed.
        evaluations: usize,
        /// Best energy the session has found so far.
        energy: f64,
    },
    /// A successive-halving rung completed.
    RungCompleted {
        /// The QAOA depth `p`.
        depth: usize,
        /// Rung index (0-based).
        rung: usize,
        /// Cumulative per-session budget target of this rung.
        target_budget: usize,
        /// Candidates that entered the rung.
        entrants: usize,
        /// Candidates promoted out of the rung.
        survivors: usize,
        /// Objective evaluations spent in this rung across all sessions.
        evaluations: usize,
    },
    /// A candidate was pruned by successive halving.
    CandidatePruned {
        /// The QAOA depth `p`.
        depth: usize,
        /// Candidate index within the admitted cohort (proposal order).
        candidate: usize,
        /// The candidate's mixer label.
        mixer_label: String,
        /// Rung (0-based) after which it was cut.
        rung: usize,
    },
    /// A candidate finished evaluation (at full budget, or with its partial
    /// result if pruned).
    CandidateEvaluated {
        /// The QAOA depth `p`.
        depth: usize,
        /// Candidate index within the admitted cohort (proposal order).
        candidate: usize,
        /// The candidate's mixer label.
        mixer_label: String,
        /// Mean trained energy over the graphs.
        mean_energy: f64,
        /// Objective evaluations actually spent on this candidate.
        total_evaluations: usize,
        /// Rung the candidate was pruned at, if any.
        pruned_at_rung: Option<usize>,
    },
    /// A depth finished; its results are now checkpointable.
    DepthCompleted {
        /// The QAOA depth `p`.
        depth: usize,
        /// Best mean energy seen at this depth.
        best_energy: f64,
        /// Candidates evaluated at this depth.
        evaluated: usize,
        /// Candidates pruned before the full budget.
        pruned: usize,
    },
    /// The job was served from the server's content-addressed result cache:
    /// no engine ran. Emitted only by the [`crate::server::JobServer`]
    /// (never by a session engine), immediately followed by a synthetic
    /// [`SearchEvent::Finished`] built from the cached outcome.
    CacheHit {
        /// Hex rendering of the cache key (the canonical-spec hash).
        key: String,
    },
    /// The cluster coordinator moved this job to another shard after its
    /// original shard died. Emitted only by
    /// [`crate::cluster::Coordinator`] (never by a session engine or a
    /// single-node server), prepended to the proxied stream ahead of the
    /// new shard's own events.
    Migrated {
        /// Address of the shard the job was running on when it died.
        from: String,
        /// Address of the surviving shard the job was re-submitted to.
        to: String,
        /// Whether the new shard resumed from a checkpoint recovered out
        /// of the dead shard's journal (`false` = re-ran from scratch;
        /// both paths are bit-identical to an uninterrupted run).
        resumed: bool,
    },
    /// The run stopped at a cancellation point; completed depths drain into
    /// a valid partial outcome.
    Cancelled {
        /// Depths fully evaluated before the cancellation took effect.
        completed_depths: usize,
    },
    /// The run finished every depth.
    Finished {
        /// Winning mixer label.
        best_mixer: String,
        /// Depth the winner was found at.
        best_depth: usize,
        /// Winning mean energy.
        best_energy: f64,
        /// Total candidates evaluated.
        candidates_evaluated: usize,
    },
    /// The run hit an error and stopped.
    Failed {
        /// The error description ([`crate::SearchError`] rendering).
        message: String,
    },
}

impl SearchEvent {
    /// Short lifecycle tag, convenient for logs and protocol filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::Started { .. } => "started",
            SearchEvent::DepthStarted { .. } => "depth_started",
            SearchEvent::CandidatesGated { .. } => "candidates_gated",
            SearchEvent::SessionAdvanced { .. } => "session_advanced",
            SearchEvent::RungCompleted { .. } => "rung_completed",
            SearchEvent::CandidatePruned { .. } => "candidate_pruned",
            SearchEvent::CandidateEvaluated { .. } => "candidate_evaluated",
            SearchEvent::DepthCompleted { .. } => "depth_completed",
            SearchEvent::CacheHit { .. } => "cache_hit",
            SearchEvent::Migrated { .. } => "migrated",
            SearchEvent::Cancelled { .. } => "cancelled",
            SearchEvent::Finished { .. } => "finished",
            SearchEvent::Failed { .. } => "failed",
        }
    }

    /// Whether this event terminates the stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SearchEvent::Cancelled { .. }
                | SearchEvent::Finished { .. }
                | SearchEvent::Failed { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_round_trip() {
        let events = vec![
            SearchEvent::Started {
                problem: "maxcut".into(),
                mode: ExecutionMode::Parallel,
                max_depth: 2,
                start_depth: 1,
                num_graphs: 2,
            },
            SearchEvent::RungCompleted {
                depth: 1,
                rung: 0,
                target_budget: 10,
                entrants: 6,
                survivors: 3,
                evaluations: 66,
            },
            SearchEvent::CandidateEvaluated {
                depth: 1,
                candidate: 0,
                mixer_label: "('rx')".into(),
                mean_energy: 4.25,
                total_evaluations: 40,
                pruned_at_rung: None,
            },
            SearchEvent::Finished {
                best_mixer: "('rx')".into(),
                best_depth: 1,
                best_energy: 4.25,
                candidates_evaluated: 6,
            },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: SearchEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
            assert!(!event.kind().is_empty());
        }
    }

    #[test]
    fn terminal_events_are_flagged() {
        assert!(SearchEvent::Cancelled {
            completed_depths: 0
        }
        .is_terminal());
        assert!(SearchEvent::Finished {
            best_mixer: String::new(),
            best_depth: 1,
            best_energy: 0.0,
            candidates_evaluated: 0,
        }
        .is_terminal());
        assert!(!SearchEvent::DepthStarted {
            depth: 1,
            proposed: 4
        }
        .is_terminal());
    }
}
