//! The Evaluator module: train a candidate circuit and report its reward.
//!
//! "This module is responsible for training the generated quantum circuit on
//! the QAOA cost function in Equation 1. The trained circuit is then
//! evaluated and the reward is propagated back to the predictor module."
//! (§2.1). The reward of a candidate mixer is its trained Max-Cut energy
//! averaged over the training graphs; the per-graph approximation ratio is
//! kept as well for the quality figures (Figs. 7–9).

use crate::error::SearchError;
use crate::sync::lock_recover;
use graphs::{Graph, ProblemKind};
use optim::{CobylaOptimizer, NelderMead, Optimizer, OptimizerKind, RandomSearch, Resumable, Spsa};
use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::{EnergyEvaluator, TrainedCircuit, TrainingSession};
use qaoa::mixer::Mixer;
use qaoa::Backend;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// The reward of one candidate mixer on one or more graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// The mixer that was evaluated.
    pub mixer_label: String,
    /// QAOA depth used.
    pub depth: usize,
    /// Mean trained energy over the graphs.
    pub mean_energy: f64,
    /// Mean approximation ratio over the graphs.
    pub mean_approx_ratio: f64,
    /// Per-graph trained results.
    pub per_graph: Vec<TrainedCircuit>,
    /// Total optimizer evaluations spent — under successive halving this is
    /// the budget *actually* consumed, which for pruned candidates is far
    /// below the configured full budget.
    pub total_evaluations: usize,
    /// The successive-halving rung (0-based) after which this candidate was
    /// pruned; `None` for candidates that survived to the full budget (or
    /// when pruning was disabled).
    pub pruned_at_rung: Option<usize>,
}

impl CandidateResult {
    /// Aggregate per-graph trained results into a candidate reward (mean
    /// energy / approximation ratio over the graphs, summed evaluations).
    /// Used by the successive-halving pipeline, which trains the per-graph
    /// sessions itself.
    pub fn from_per_graph(
        mixer_label: String,
        depth: usize,
        per_graph: Vec<TrainedCircuit>,
        pruned_at_rung: Option<usize>,
    ) -> Result<CandidateResult, SearchError> {
        if per_graph.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        let count = per_graph.len() as f64;
        let mean_energy = per_graph.iter().map(|t| t.energy).sum::<f64>() / count;
        let mean_approx_ratio = per_graph.iter().map(|t| t.approx_ratio).sum::<f64>() / count;
        let total_evaluations = per_graph.iter().map(|t| t.evaluations).sum();
        Ok(CandidateResult {
            mixer_label,
            depth,
            mean_energy,
            mean_approx_ratio,
            per_graph,
            total_evaluations,
            pruned_at_rung,
        })
    }
}

/// Evaluator configuration: which backend, optimizer, and training budget
/// (the paper: QTensor backend, COBYLA, 200 steps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluatorConfig {
    /// Simulator backend.
    pub backend: Backend,
    /// Classical optimizer.
    pub optimizer: OptimizerKind,
    /// Objective-evaluation budget per candidate per graph.
    pub budget: usize,
    /// Number of optimizer restarts per candidate per graph (the budget is
    /// split across restarts). `1` reproduces the paper's single COBYLA run;
    /// larger values trade evaluations for robustness at deeper `p`.
    pub restarts: usize,
    /// The cost problem family candidates are trained on (each dataset
    /// graph is mapped to a concrete instance via
    /// [`ProblemKind::instantiate`]). Defaults to the paper's Max-Cut.
    pub problem: ProblemKind,
}

impl Default for EvaluatorConfig {
    fn default() -> Self {
        EvaluatorConfig {
            backend: Backend::TensorNetwork,
            optimizer: OptimizerKind::Cobyla,
            budget: 200,
            restarts: 1,
            problem: ProblemKind::MaxCut,
        }
    }
}

impl EvaluatorConfig {
    fn build_optimizer(&self) -> Box<dyn Optimizer> {
        match self.optimizer {
            OptimizerKind::Cobyla => Box::new(CobylaOptimizer::default()),
            OptimizerKind::NelderMead => Box::new(NelderMead::default()),
            OptimizerKind::Spsa => Box::new(Spsa::default()),
            OptimizerKind::RandomSearch => Box::new(RandomSearch::default()),
            OptimizerKind::GridSearch => Box::new(optim::GridSearch::default()),
        }
    }

    /// The configured optimizer behind the checkpoint/resume interface the
    /// successive-halving pipeline drives.
    pub fn build_resumable(&self) -> Box<dyn Resumable> {
        self.optimizer.build_resumable()
    }
}

/// Structural fingerprint of a (problem, backend, graph) triple (problem
/// family and parameters, simulator backend, nodes, exact weighted edge
/// list), used as the evaluator-cache key. Collisions are guarded by a
/// full triple-equality check on lookup: within one [`Evaluator`] the
/// problem and backend are fixed, but the cache can be shared server-wide
/// across jobs with differing configurations ([`EnergyCache`]).
fn instance_fingerprint(problem: &ProblemKind, backend: Backend, graph: &Graph) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    // ProblemKind carries f64 parameters, so hash its debug rendering.
    format!("{problem:?}|{backend:?}").hash(&mut h);
    graph.num_nodes().hash(&mut h);
    for e in graph.edges() {
        e.u.hash(&mut h);
        e.v.hash(&mut h);
        e.weight.to_bits().hash(&mut h);
    }
    h.finish()
}

/// One memoized entry: the built [`EnergyEvaluator`] plus the exact triple
/// it was built for (the collision guard).
#[derive(Debug)]
struct EnergyEntry {
    problem: ProblemKind,
    backend: Backend,
    evaluator: Arc<EnergyEvaluator>,
    /// LRU clock value of the last touch (only meaningful when bounded).
    last_used: u64,
}

#[derive(Debug)]
struct EnergyCacheInner {
    /// `None` = unbounded (the per-search default: a search only ever sees
    /// its own handful of graphs). Bounded caches are shared server-wide.
    capacity: Option<usize>,
    tick: u64,
    hits: u64,
    builds: u64,
    evictions: u64,
    entries: HashMap<u64, EnergyEntry>,
}

/// Point-in-time counters of an [`EnergyCache`] (surfaced by the server's
/// `stats` request).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Bound on entries (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Lookups served from the memo.
    pub hits: u64,
    /// Evaluators built (misses).
    pub builds: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
}

/// A shareable memo of per-problem-instance [`EnergyEvaluator`]s (the
/// classical reference solution and cached edge list behind every
/// training session).
///
/// Each [`Evaluator`] owns an unbounded one by default, scoped to its own
/// search. The [`crate::server::JobServer`] lifts the memo to a single
/// **bounded** server-scoped instance shared by every job, so
/// distinct-but-overlapping searches (same graphs and problem, different
/// budgets or seeds) reuse the expensive classical reference instead of
/// recomputing it per job. Entries are keyed by the full
/// (problem, backend, graph) triple with equality guards, so sharing
/// across heterogeneous jobs can never cross-contaminate results.
#[derive(Debug, Clone)]
pub struct EnergyCache {
    inner: Arc<Mutex<EnergyCacheInner>>,
}

impl EnergyCache {
    /// An unbounded memo (per-search usage: one search touches only its
    /// own training graphs).
    pub fn unbounded() -> EnergyCache {
        EnergyCache::with_bound(None)
    }

    /// A memo bounded to `capacity` entries, evicting least-recently-used
    /// beyond it (server-scoped usage).
    pub fn bounded(capacity: usize) -> EnergyCache {
        EnergyCache::with_bound(Some(capacity.max(1)))
    }

    fn with_bound(capacity: Option<usize>) -> EnergyCache {
        EnergyCache {
            inner: Arc::new(Mutex::new(EnergyCacheInner {
                capacity,
                tick: 0,
                hits: 0,
                builds: 0,
                evictions: 0,
                entries: HashMap::new(),
            })),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EnergyCacheStats {
        let inner = lock_recover(&self.inner);
        EnergyCacheStats {
            entries: inner.entries.len(),
            capacity: inner.capacity,
            hits: inner.hits,
            builds: inner.builds,
            evictions: inner.evictions,
        }
    }

    /// The memoized energy evaluator for the triple, building it on miss.
    fn get_or_build(
        &self,
        problem: &ProblemKind,
        backend: Backend,
        graph: &Graph,
    ) -> Arc<EnergyEvaluator> {
        let key = instance_fingerprint(problem, backend, graph);
        {
            let mut inner = lock_recover(&self.inner);
            let tick = inner.bump_tick();
            let hit = inner.entries.get_mut(&key).and_then(|entry| {
                entry.matches(problem, backend, graph).then(|| {
                    entry.last_used = tick;
                    Arc::clone(&entry.evaluator)
                })
            });
            if let Some(evaluator) = hit {
                inner.hits += 1;
                return evaluator;
            }
        }
        // Built outside the lock: the classical reference is expensive and
        // must not serialize the parallel scheduler's workers. Two workers
        // may race to build the same entry; the loser's work is discarded.
        let instance = problem.instantiate(graph);
        let built = Arc::new(
            EnergyEvaluator::for_problem(graph, instance, backend)
                .expect("instantiated problem matches its graph"),
        );
        let mut inner = lock_recover(&self.inner);
        let tick = inner.bump_tick();
        inner.builds += 1;
        let evaluator = match inner.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if slot.get().matches(problem, backend, graph) {
                    // Another worker built the same entry first — reuse it.
                    slot.get_mut().last_used = tick;
                    Arc::clone(&slot.get().evaluator)
                } else {
                    // Fingerprint collision: evict the other triple's entry
                    // so a graph never trains against the wrong edge list.
                    slot.insert(EnergyEntry {
                        problem: problem.clone(),
                        backend,
                        evaluator: Arc::clone(&built),
                        last_used: tick,
                    });
                    built
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(EnergyEntry {
                    problem: problem.clone(),
                    backend,
                    evaluator: Arc::clone(&built),
                    last_used: tick,
                });
                built
            }
        };
        inner.evict_over_capacity();
        evaluator
    }
}

impl EnergyCacheInner {
    fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_over_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.entries.len() > capacity {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
            else {
                break;
            };
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }
}

impl EnergyEntry {
    fn matches(&self, problem: &ProblemKind, backend: Backend, graph: &Graph) -> bool {
        self.problem == *problem && self.backend == backend && self.evaluator.graph() == graph
    }
}

/// Trains candidate mixers on a set of graphs (SIMULATE_QAOA of Algorithm 1).
///
/// Per-graph [`EnergyEvaluator`]s (classical reference cut, cached edge
/// list) are memoized across candidates through an [`EnergyCache`]: a
/// search trains hundreds of mixers on the same handful of graphs, and the
/// classical Max-Cut reference is far too expensive to recompute per
/// candidate. The cache is shared between clones, so the parallel
/// scheduler's workers all reuse one entry per graph — and the
/// [`crate::server::JobServer`] injects a server-scoped cache so entries
/// are reused *across* jobs too.
#[derive(Debug, Clone)]
pub struct Evaluator {
    config: EvaluatorConfig,
    cache: EnergyCache,
}

impl Evaluator {
    /// An evaluator with the paper's defaults (tensor network, COBYLA, 200
    /// steps).
    pub fn paper_default() -> Evaluator {
        Evaluator::new(EvaluatorConfig::default())
    }

    /// An evaluator with an explicit configuration and its own private
    /// (unbounded) memo.
    pub fn new(config: EvaluatorConfig) -> Evaluator {
        Evaluator::with_energy_cache(config, EnergyCache::unbounded())
    }

    /// An evaluator backed by a shared (possibly server-scoped) memo.
    pub fn with_energy_cache(config: EvaluatorConfig, cache: EnergyCache) -> Evaluator {
        Evaluator { config, cache }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EvaluatorConfig {
        &self.config
    }

    /// The memoized per-problem-instance energy evaluator.
    fn energy_evaluator_for(&self, graph: &Graph) -> Arc<EnergyEvaluator> {
        self.cache
            .get_or_build(&self.config.problem, self.config.backend, graph)
    }

    /// Train `mixer` at `depth` on a single graph (against the configured
    /// problem family's instance for that graph).
    pub fn evaluate_on_graph(
        &self,
        graph: &Graph,
        mixer: &Mixer,
        depth: usize,
    ) -> Result<TrainedCircuit, SearchError> {
        let energy_eval = self.energy_evaluator_for(graph);
        let ansatz = QaoaAnsatz::for_problem(energy_eval.problem(), depth, mixer.clone())?;
        let optimizer = self.config.build_optimizer();
        if self.config.restarts > 1 {
            energy_eval
                .train_multistart(
                    &ansatz,
                    optimizer.as_ref(),
                    self.config.budget,
                    self.config.restarts,
                )
                .map_err(SearchError::from)
        } else {
            energy_eval
                .train(&ansatz, optimizer.as_ref(), self.config.budget)
                .map_err(SearchError::from)
        }
    }

    /// Begin a resumable training session for `mixer` at `depth` on one
    /// graph. `warm_from` optionally supplies trained `(γ, β)` angles from a
    /// shallower depth; the session then starts from
    /// [`QaoaAnsatz::warm_start_flat`] instead of the small-angle default.
    /// The session is advanced rung by rung by the successive-halving
    /// pipeline; `budget_hint` is the full budget it will receive if never
    /// pruned.
    ///
    /// `optimizer` must be the same instance (or an identically configured
    /// one) later passed to every
    /// [`TrainingSession::advance_in`](qaoa::energy::TrainingSession::advance_in)
    /// call — checkpoint layout and resume behaviour belong to one
    /// optimizer configuration. The pipeline builds it once via
    /// [`EvaluatorConfig::build_resumable`] and shares it across all
    /// sessions and rungs.
    pub fn begin_session(
        &self,
        graph: &Graph,
        mixer: &Mixer,
        depth: usize,
        warm_from: Option<(&[f64], &[f64])>,
        budget_hint: usize,
        optimizer: &dyn Resumable,
    ) -> Result<TrainingSession, SearchError> {
        let energy_eval = self.energy_evaluator_for(graph);
        let ansatz = QaoaAnsatz::for_problem(energy_eval.problem(), depth, mixer.clone())?;
        let initial = warm_from.map(|(gammas, betas)| ansatz.warm_start_flat(gammas, betas));
        energy_eval
            .begin_training(&ansatz, optimizer, initial.as_deref(), budget_hint)
            .map_err(SearchError::from)
    }

    /// Train `mixer` at `depth` on every graph and aggregate the reward.
    pub fn evaluate(
        &self,
        graphs: &[Graph],
        mixer: &Mixer,
        depth: usize,
    ) -> Result<CandidateResult, SearchError> {
        if graphs.is_empty() {
            return Err(SearchError::NoGraphs);
        }
        let mut per_graph = Vec::with_capacity(graphs.len());
        for graph in graphs {
            per_graph.push(self.evaluate_on_graph(graph, mixer, depth)?);
        }
        let mean_energy = per_graph.iter().map(|t| t.energy).sum::<f64>() / per_graph.len() as f64;
        let mean_approx_ratio =
            per_graph.iter().map(|t| t.approx_ratio).sum::<f64>() / per_graph.len() as f64;
        let total_evaluations = per_graph.iter().map(|t| t.evaluations).sum();
        Ok(CandidateResult {
            mixer_label: mixer.label(),
            depth,
            mean_energy,
            mean_approx_ratio,
            per_graph,
            total_evaluations,
            pruned_at_rung: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;

    fn small_config() -> EvaluatorConfig {
        EvaluatorConfig {
            backend: Backend::StateVector,
            optimizer: OptimizerKind::Cobyla,
            budget: 40,
            restarts: 1,
            problem: ProblemKind::MaxCut,
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = EvaluatorConfig::default();
        assert_eq!(c.budget, 200);
        assert_eq!(c.optimizer, OptimizerKind::Cobyla);
        assert_eq!(c.backend, Backend::TensorNetwork);
        assert_eq!(c.restarts, 1);
    }

    #[test]
    fn multistart_evaluator_does_not_regress() {
        let graph = Graph::cycle(6);
        let single = Evaluator::new(small_config());
        let multi = Evaluator::new(EvaluatorConfig {
            restarts: 3,
            budget: 120,
            ..small_config()
        });
        let e1 = single
            .evaluate_on_graph(&graph, &Mixer::baseline(), 2)
            .unwrap();
        let e3 = multi
            .evaluate_on_graph(&graph, &Mixer::baseline(), 2)
            .unwrap();
        assert!(
            e3.energy >= e1.energy - 0.1,
            "multi {} vs single {}",
            e3.energy,
            e1.energy
        );
    }

    #[test]
    fn evaluate_on_graph_produces_sane_reward() {
        let evaluator = Evaluator::new(small_config());
        let graph = Graph::cycle(6);
        let trained = evaluator
            .evaluate_on_graph(&graph, &Mixer::baseline(), 1)
            .unwrap();
        assert!(trained.energy >= 3.0 - 1e-9); // at least the plus-state value
        assert!(trained.energy <= 6.0 + 1e-9); // at most the optimum
        assert!(trained.approx_ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn evaluate_aggregates_over_graphs() {
        let evaluator = Evaluator::new(small_config());
        let graphs = vec![Graph::cycle(4), Graph::cycle(6)];
        let result = evaluator.evaluate(&graphs, &Mixer::qnas(), 1).unwrap();
        assert_eq!(result.per_graph.len(), 2);
        assert_eq!(result.depth, 1);
        assert_eq!(result.mixer_label, "('rx', 'ry')");
        let manual_mean = result.per_graph.iter().map(|t| t.energy).sum::<f64>() / 2.0;
        assert!((result.mean_energy - manual_mean).abs() < 1e-12);
        assert!(result.total_evaluations > 0);
    }

    #[test]
    fn energy_evaluators_are_memoized_per_graph() {
        let evaluator = Evaluator::new(small_config());
        let g1 = Graph::cycle(5);
        let g1_again = Graph::cycle(5);
        let g2 = Graph::cycle(6);
        let a = evaluator.energy_evaluator_for(&g1);
        let b = evaluator.energy_evaluator_for(&g1_again);
        let c = evaluator.energy_evaluator_for(&g2);
        assert!(Arc::ptr_eq(&a, &b), "equal graphs must share one entry");
        assert!(!Arc::ptr_eq(&a, &c), "different graphs must not collide");
        // Clones share the cache.
        let clone = evaluator.clone();
        let d = clone.energy_evaluator_for(&g1);
        assert!(Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn shared_energy_cache_crosses_evaluator_instances() {
        // Two evaluators with different budgets (distinct jobs on a
        // server) share one bounded cache: the second reuses the first's
        // classical reference.
        let shared = EnergyCache::bounded(8);
        let a = Evaluator::with_energy_cache(small_config(), shared.clone());
        let b = Evaluator::with_energy_cache(
            EvaluatorConfig {
                budget: 80,
                ..small_config()
            },
            shared.clone(),
        );
        let graph = Graph::cycle(5);
        let ea = a.energy_evaluator_for(&graph);
        let eb = b.energy_evaluator_for(&graph);
        assert!(Arc::ptr_eq(&ea, &eb), "shared cache must serve both jobs");
        let stats = shared.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 1);
        // A different backend is a different entry, never a false hit.
        let c = Evaluator::with_energy_cache(
            EvaluatorConfig {
                backend: Backend::TensorNetwork,
                ..small_config()
            },
            shared.clone(),
        );
        let ec = c.energy_evaluator_for(&graph);
        assert!(!Arc::ptr_eq(&ea, &ec));
        assert_eq!(shared.stats().builds, 2);
    }

    #[test]
    fn bounded_energy_cache_evicts_lru() {
        let shared = EnergyCache::bounded(2);
        let evaluator = Evaluator::with_energy_cache(small_config(), shared.clone());
        let g1 = Graph::cycle(4);
        let g2 = Graph::cycle(5);
        let g3 = Graph::cycle(6);
        let first = evaluator.energy_evaluator_for(&g1);
        let _ = evaluator.energy_evaluator_for(&g2);
        let _ = evaluator.energy_evaluator_for(&g1); // refresh g1
        let _ = evaluator.energy_evaluator_for(&g3); // evicts g2
        let stats = shared.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // g1 survived the eviction (g2 was least recently used).
        let again = evaluator.energy_evaluator_for(&g1);
        assert!(Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn default_config_problem_is_maxcut() {
        assert_eq!(EvaluatorConfig::default().problem, ProblemKind::MaxCut);
    }

    #[test]
    fn evaluator_trains_every_shipped_problem_family() {
        let graph = Graph::erdos_renyi(6, 0.5, 12);
        for kind in ProblemKind::all(12) {
            let evaluator = Evaluator::new(EvaluatorConfig {
                problem: kind.clone(),
                ..small_config()
            });
            let trained = evaluator
                .evaluate_on_graph(&graph, &Mixer::baseline(), 1)
                .unwrap();
            assert!(trained.energy.is_finite(), "{}", kind.name());
            assert!(
                trained.approx_ratio <= 1.0 + 1e-9,
                "{}: ratio {}",
                kind.name(),
                trained.approx_ratio
            );
        }
    }

    #[test]
    fn evaluator_cache_distinguishes_problem_families() {
        let graph = Graph::cycle(6);
        let g_key_mc = instance_fingerprint(&ProblemKind::MaxCut, Backend::StateVector, &graph);
        let g_key_sk = instance_fingerprint(
            &ProblemKind::SherringtonKirkpatrick { seed: 0 },
            Backend::StateVector,
            &graph,
        );
        assert_ne!(g_key_mc, g_key_sk);
        let mc = Evaluator::new(small_config());
        let sk = Evaluator::new(EvaluatorConfig {
            problem: ProblemKind::SherringtonKirkpatrick { seed: 0 },
            ..small_config()
        });
        assert_eq!(mc.energy_evaluator_for(&graph).problem().name(), "maxcut");
        assert_eq!(sk.energy_evaluator_for(&graph).problem().name(), "sk");
    }

    #[test]
    fn no_graphs_is_an_error() {
        let evaluator = Evaluator::new(small_config());
        assert!(matches!(
            evaluator.evaluate(&[], &Mixer::baseline(), 1),
            Err(SearchError::NoGraphs)
        ));
    }

    #[test]
    fn non_mixing_candidate_scores_half_weight() {
        // A purely diagonal mixer leaves the plus state: reward = |E|/2.
        let evaluator = Evaluator::new(small_config());
        let graph = Graph::cycle(6);
        let mixer = Mixer::new(vec![Gate::RZ]).unwrap();
        let trained = evaluator.evaluate_on_graph(&graph, &mixer, 1).unwrap();
        assert!((trained.energy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixing_candidate_beats_non_mixing() {
        let evaluator = Evaluator::new(small_config());
        let graph = Graph::cycle(6);
        let diag = evaluator
            .evaluate_on_graph(&graph, &Mixer::new(vec![Gate::RZ]).unwrap(), 1)
            .unwrap();
        let rx = evaluator
            .evaluate_on_graph(&graph, &Mixer::baseline(), 1)
            .unwrap();
        assert!(
            rx.energy > diag.energy + 0.1,
            "rx {} vs diag {}",
            rx.energy,
            diag.energy
        );
    }
}
