//! The budget-aware evaluation pipeline: successive halving, warm starts,
//! and a predictor gate over the work-stealing executor.
//!
//! The paper's released search spends the full optimizer budget (200 COBYLA
//! steps per graph) on **every** candidate, including obvious losers.
//! Surrogate-assisted QAS benchmarks show most candidates can be rejected
//! after a fraction of that budget, which is the lever this module pulls.
//! One depth is evaluated as follows:
//!
//! 1. **Predictor gate** (optional): candidates are ranked by
//!    [`Predictor::score`] under a bandit trained on earlier depths'
//!    rewards, and only the top `predictor_gate` sequences are admitted.
//! 2. **Warm start** (optional): every admitted candidate's per-graph
//!    [`TrainingSession`] starts from the best fully-trained angles of
//!    depth `p − 1` ([`qaoa::ansatz::QaoaAnsatz::warm_start_flat`]) instead
//!    of the small-angle default.
//! 3. **Successive halving**: all sessions are advanced to the first rung's
//!    cumulative budget, candidates are ranked by mean energy, the top
//!    `1/eta` fraction is promoted, and promoted sessions *continue* (via
//!    the [`optim::Resumable`] checkpoint API — no restart) at the next
//!    rung's budget, until the final rung equals the configured full budget.
//! 4. Each rung's session advances run on the work-stealing executor
//!    ([`crate::worksteal`]) with per-worker scratch states; outcomes are
//!    deterministic for a fixed seed regardless of thread count.
//!
//! Pruned candidates keep their partial results (and record the rung they
//! were pruned at) so reports can show exactly where the budget went.

use crate::error::SearchError;
use crate::evaluator::{CandidateResult, EnergyCache, Evaluator};
use crate::events::SearchEvent;
use crate::fault::{self, site, FaultContext};
use crate::predictor::{EpsilonGreedyPredictor, Predictor};
use crate::qbuilder::QBuilder;
use crate::search::{RungStat, SearchConfig};
use crate::session::SchedulerCheckpoint;
use crate::sync::lock_recover;
use crate::worksteal::run_tasks;
use graphs::Graph;
use qaoa::energy::{ProgressHook, TrainedCircuit, TrainingProgress, TrainingSession};
use qaoa::mixer::Mixer;
use qcircuit::Gate;
use std::sync::{Arc, Mutex};

/// The cumulative budget targets of the halving schedule: starting at
/// `first`, multiplying by `eta`, capped at (and always finishing with)
/// `full`.
pub(crate) fn rung_targets(first: usize, eta: usize, full: usize) -> Vec<usize> {
    let mut targets = Vec::new();
    let mut b = first.max(1).min(full);
    loop {
        targets.push(b);
        if b >= full {
            break;
        }
        b = b.saturating_mul(eta.max(2)).min(full);
    }
    targets
}

/// One depth's evaluated cohort plus the equal-budget bandit rewards.
struct EvaluatedCohort {
    results: Vec<CandidateResult>,
    rungs: Vec<RungStat>,
    /// Per-candidate mean energy at the first (equal-budget) rung.
    rewards: Vec<f64>,
}

/// Everything `evaluate_depth` reports back to the scheduler.
pub(crate) struct DepthEvaluation {
    /// One result per admitted candidate, in proposal order.
    pub results: Vec<CandidateResult>,
    /// Per-rung accounting (empty when pruning was disabled or the legacy
    /// multi-start path ran).
    pub rungs: Vec<RungStat>,
    /// Candidates rejected by the predictor gate before any evaluation.
    pub gated_out: usize,
}

/// The stateful scheduler driving one search run's depth loop.
///
/// Holds the memoized [`Evaluator`], the bandit that powers the predictor
/// gate, and the warm-start source (best fully-trained candidate of the
/// previous depth).
pub(crate) struct BudgetedScheduler {
    config: SearchConfig,
    evaluator: Evaluator,
    builder: QBuilder,
    ranker: EpsilonGreedyPredictor,
    ranker_trained: bool,
    warm_source: Option<CandidateResult>,
}

impl BudgetedScheduler {
    /// Build a scheduler with an optionally shared energy-evaluator memo
    /// (the job server injects its server-scoped cache here; `None` keeps
    /// the search's own private, unbounded memo).
    pub(crate) fn with_energy_cache(
        config: &SearchConfig,
        energy_cache: Option<EnergyCache>,
    ) -> BudgetedScheduler {
        let evaluator = match energy_cache {
            Some(cache) => Evaluator::with_energy_cache(config.evaluator.clone(), cache),
            None => Evaluator::new(config.evaluator.clone()),
        };
        BudgetedScheduler {
            evaluator,
            builder: QBuilder::new(config.alphabet.clone()),
            // Exploration rate 0: the ranker only scores, it never proposes.
            ranker: EpsilonGreedyPredictor::new(config.alphabet.clone(), 0.0, config.seed),
            ranker_trained: false,
            warm_source: None,
            config: config.clone(),
        }
    }

    /// Snapshot the cross-depth state (ranker + warm-start source) for the
    /// session layer's [`crate::session::SearchCheckpoint`]. Everything a
    /// later depth's evaluation depends on beyond the immutable
    /// configuration lives here, which is what makes resume-from-checkpoint
    /// bit-identical to an uninterrupted run.
    pub(crate) fn checkpoint(&self) -> SchedulerCheckpoint {
        SchedulerCheckpoint {
            ranker: self.ranker.state(),
            ranker_trained: self.ranker_trained,
            warm_source: self.warm_source.clone(),
        }
    }

    /// Rebuild a scheduler mid-search from a checkpoint (the inverse of
    /// [`BudgetedScheduler::checkpoint`]).
    pub(crate) fn restore(
        config: &SearchConfig,
        state: SchedulerCheckpoint,
        energy_cache: Option<EnergyCache>,
    ) -> BudgetedScheduler {
        let mut scheduler = BudgetedScheduler::with_energy_cache(config, energy_cache);
        scheduler.ranker.restore_state(state.ranker);
        scheduler.ranker_trained = state.ranker_trained;
        scheduler.warm_source = state.warm_source;
        scheduler
    }

    /// Rank-and-truncate candidates through the predictor gate. Returns the
    /// admitted candidates (in original proposal order) and the number
    /// rejected. The gate only engages once the ranker has seen feedback
    /// (i.e. from depth 2 on), so depth 1 always evaluates everything.
    fn apply_gate(&self, candidates: Vec<Vec<Gate>>) -> (Vec<Vec<Gate>>, usize) {
        let Some(cap) = self.config.pipeline.predictor_gate else {
            return (candidates, 0);
        };
        if !self.ranker_trained || candidates.len() <= cap {
            return (candidates, 0);
        }
        let scores: Vec<f64> = candidates.iter().map(|c| self.ranker.score(c)).collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        // Deterministic: higher score first, proposal order breaks ties.
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order.truncate(cap);
        order.sort_unstable();
        let gated_out = candidates.len() - order.len();
        let mut keep = vec![false; candidates.len()];
        for &i in &order {
            keep[i] = true;
        }
        let admitted = candidates
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();
        (admitted, gated_out)
    }

    /// Evaluate one depth's candidates and update the scheduler state
    /// (ranker feedback, warm-start source). `events` receives the depth's
    /// telemetry ([`SearchEvent::CandidatesGated`], `SessionAdvanced`,
    /// `RungCompleted`, `CandidatePruned`) in deterministic order — always
    /// from the calling thread, never from a worker. `cancel` is polled
    /// between rungs: once set, the depth aborts with
    /// [`SearchError::Cancelled`] and its partial sessions are dropped
    /// (cancellation is depth-atomic for results). `faults` is the
    /// optional chaos-test context: [`crate::fault::site::PIPELINE_RUNG`]
    /// fires at the top of every successive-halving rung.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_depth(
        &mut self,
        depth: usize,
        candidates: Vec<Vec<Gate>>,
        graphs: &[Graph],
        threads: usize,
        cancel: &std::sync::atomic::AtomicBool,
        events: &mut dyn FnMut(SearchEvent),
        faults: Option<&FaultContext>,
    ) -> Result<DepthEvaluation, SearchError> {
        let (candidates, gated_out) = self.apply_gate(candidates);
        if gated_out > 0 {
            events(SearchEvent::CandidatesGated {
                depth,
                admitted: candidates.len(),
                gated_out,
            });
        }
        if candidates.is_empty() {
            return Ok(DepthEvaluation {
                results: Vec::new(),
                rungs: Vec::new(),
                gated_out,
            });
        }
        let mixers: Vec<Mixer> = candidates
            .iter()
            .map(|gates| self.builder.build_mixer(gates))
            .collect::<Result<_, _>>()?;

        let EvaluatedCohort {
            results,
            rungs,
            rewards,
        } = if self.config.evaluator.restarts > 1 {
            // Multi-start training restarts by design, so it cannot resume;
            // it still benefits from the work-stealing executor at candidate
            // granularity.
            self.evaluate_legacy(depth, &mixers, graphs, threads)?
        } else {
            self.evaluate_halving(depth, &mixers, graphs, threads, cancel, events, faults)?
        };

        // The gate bandit must compare like with like: under halving,
        // survivors end up far better trained than pruned losers, so the
        // reward is each candidate's mean energy at the *first* rung, where
        // every candidate received the same budget.
        for (gates, reward) in candidates.iter().zip(rewards.iter()) {
            self.ranker.feedback(gates, *reward);
        }
        self.ranker_trained = true;

        // Warm-start source for depth + 1: the best candidate that received
        // the full budget (partial results would transfer half-trained
        // angles). First maximum wins, so ties are deterministic.
        self.warm_source = results
            .iter()
            .filter(|r| r.pruned_at_rung.is_none())
            .fold(None::<&CandidateResult>, |best, r| match best {
                Some(b) if b.mean_energy >= r.mean_energy => Some(b),
                _ => Some(r),
            })
            .cloned();

        Ok(DepthEvaluation {
            results,
            rungs,
            gated_out,
        })
    }

    /// The successive-halving session pipeline. The third return value is
    /// the per-candidate mean energy after the first rung — the
    /// equal-budget reward the gate bandit trains on.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_halving(
        &self,
        depth: usize,
        mixers: &[Mixer],
        graphs: &[Graph],
        threads: usize,
        cancel: &std::sync::atomic::AtomicBool,
        events: &mut dyn FnMut(SearchEvent),
        faults: Option<&FaultContext>,
    ) -> Result<EvaluatedCohort, SearchError> {
        let pc = &self.config.pipeline;
        let full_budget = self.config.evaluator.budget;
        let num_graphs = graphs.len();
        let num_candidates = mixers.len();
        let targets = if pc.prune {
            rung_targets(pc.first_rung, pc.eta, full_budget)
        } else {
            vec![full_budget]
        };

        let warm = if pc.warm_start {
            self.warm_source.as_ref()
        } else {
            None
        };

        // One optimizer instance drives every session's start *and* every
        // resume: checkpoints are only meaningful under the configuration
        // that created them.
        let optimizer = self.config.evaluator.build_resumable();
        let optimizer = optimizer.as_ref();

        // Per-session progress observations, gathered through the
        // `qaoa::TrainingSession` hooks. Workers append in completion order
        // (nondeterministic); each rung drains and sorts by slot before
        // emitting, so the event stream stays deterministic.
        let progress: Arc<Mutex<Vec<(usize, TrainingProgress)>>> = Arc::new(Mutex::new(Vec::new()));

        // One session per (candidate, graph), laid out candidate-major.
        let mut sessions: Vec<Option<TrainingSession>> =
            Vec::with_capacity(num_candidates * num_graphs);
        for (ci, mixer) in mixers.iter().enumerate() {
            for (gi, graph) in graphs.iter().enumerate() {
                let warm_from = warm.map(|w| {
                    let prev = &w.per_graph[gi];
                    (prev.gammas.as_slice(), prev.betas.as_slice())
                });
                let mut session = self.evaluator.begin_session(
                    graph,
                    mixer,
                    depth,
                    warm_from,
                    full_budget,
                    optimizer,
                )?;
                let slot = ci * num_graphs + gi;
                let sink = Arc::clone(&progress);
                session.set_progress_hook(Some(ProgressHook::new(move |p| {
                    lock_recover(&sink).push((slot, p.clone()));
                })));
                sessions.push(Some(session));
            }
        }
        let mut snapshots: Vec<Option<TrainedCircuit>> = vec![None; num_candidates * num_graphs];
        let mut spent: Vec<usize> = vec![0; num_candidates * num_graphs];
        let mut pruned_at: Vec<Option<usize>> = vec![None; num_candidates];
        let mut active: Vec<usize> = (0..num_candidates).collect();
        let mut rung_stats = Vec::with_capacity(targets.len());
        let mut first_rung_means: Vec<f64> = Vec::new();

        for (ri, &target) in targets.iter().enumerate() {
            if cancel.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(SearchError::Cancelled);
            }
            fault::trip(faults, site::PIPELINE_RUNG)?;
            let entrants = active.len();
            let mut tasks: Vec<(usize, TrainingSession)> =
                Vec::with_capacity(entrants * num_graphs);
            for &ci in &active {
                for gi in 0..num_graphs {
                    let slot = ci * num_graphs + gi;
                    tasks.push((slot, sessions[slot].take().expect("active session present")));
                }
            }

            let outcomes = run_tasks(tasks, threads, |scratch, (slot, mut session)| {
                // Batched advance: optimizer probe sets (SPSA pairs, initial
                // simplexes, grid/random populations) run through one batched
                // statevector sweep per set, bit-identical to the scalar path.
                let buf = session
                    .uses_compiled_scratch()
                    .then(|| scratch.batch(session.num_qubits()));
                let trained = session.advance_batched_in(optimizer, target, buf);
                (slot, session, trained)
            });

            let mut rung_evaluations = 0usize;
            for (slot, session, trained) in outcomes {
                let trained = trained.map_err(SearchError::from)?;
                rung_evaluations += trained.evaluations - spent[slot];
                spent[slot] = trained.evaluations;
                snapshots[slot] = Some(trained);
                sessions[slot] = Some(session);
            }

            // Forward this rung's session telemetry in deterministic slot
            // order (workers pushed in completion order).
            let mut advanced = {
                let mut buf = lock_recover(&progress);
                std::mem::take(&mut *buf)
            };
            advanced.sort_by_key(|(slot, _)| *slot);
            for (slot, p) in advanced {
                events(SearchEvent::SessionAdvanced {
                    depth,
                    candidate: slot / num_graphs,
                    graph: slot % num_graphs,
                    evaluations: p.evaluations,
                    energy: p.best_energy,
                });
            }

            let mean_energy = |ci: usize| -> f64 {
                (0..num_graphs)
                    .map(|gi| {
                        snapshots[ci * num_graphs + gi]
                            .as_ref()
                            .expect("advanced this rung")
                            .energy
                    })
                    .sum::<f64>()
                    / num_graphs as f64
            };
            if ri == 0 {
                // Every candidate is active at rung 0 with the same budget:
                // the one point where rewards are comparable across the
                // whole cohort.
                first_rung_means = (0..num_candidates).map(mean_energy).collect();
            }

            // Promote the top 1/eta (by mean energy over the graphs); the
            // last rung keeps everyone it received.
            if ri + 1 < targets.len() {
                let keep = entrants.div_ceil(pc.eta).max(1);
                let mut order = active.clone();
                order.sort_by(|&a, &b| mean_energy(b).total_cmp(&mean_energy(a)).then(a.cmp(&b)));
                let mut cut: Vec<usize> = order[keep.min(order.len())..].to_vec();
                cut.sort_unstable();
                for &ci in &cut {
                    pruned_at[ci] = Some(ri);
                }
                order.truncate(keep);
                order.sort_unstable();
                active = order;
                for ci in cut {
                    events(SearchEvent::CandidatePruned {
                        depth,
                        candidate: ci,
                        mixer_label: mixers[ci].label(),
                        rung: ri,
                    });
                }
            }

            rung_stats.push(RungStat {
                target_budget: target,
                entrants,
                survivors: active.len(),
                evaluations: rung_evaluations,
            });
            if pc.prune {
                events(SearchEvent::RungCompleted {
                    depth,
                    rung: ri,
                    target_budget: target,
                    entrants,
                    survivors: active.len(),
                    evaluations: rung_evaluations,
                });
            }
        }

        let mut results = Vec::with_capacity(num_candidates);
        for (ci, mixer) in mixers.iter().enumerate() {
            let per_graph: Vec<TrainedCircuit> = (0..num_graphs)
                .map(|gi| {
                    snapshots[ci * num_graphs + gi]
                        .clone()
                        .expect("every candidate ran rung 0")
                })
                .collect();
            results.push(CandidateResult::from_per_graph(
                mixer.label(),
                depth,
                per_graph,
                pruned_at[ci],
            )?);
        }
        Ok(EvaluatedCohort {
            results,
            rungs: if pc.prune { rung_stats } else { Vec::new() },
            rewards: first_rung_means,
        })
    }

    /// Candidate-granularity fallback for configurations the resumable
    /// pipeline cannot serve (multi-start training). All candidates receive
    /// the full budget, so their final mean energies are the bandit reward.
    fn evaluate_legacy(
        &self,
        depth: usize,
        mixers: &[Mixer],
        graphs: &[Graph],
        threads: usize,
    ) -> Result<EvaluatedCohort, SearchError> {
        let tasks: Vec<Mixer> = mixers.to_vec();
        let evaluator = &self.evaluator;
        let outcomes = run_tasks(tasks, threads, |_scratch, mixer| {
            evaluator.evaluate(graphs, &mixer, depth)
        });
        let results: Vec<CandidateResult> = outcomes.into_iter().collect::<Result<_, _>>()?;
        let rewards = results.iter().map(|r| r.mean_energy).collect();
        Ok(EvaluatedCohort {
            results,
            rungs: Vec::new(),
            rewards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_targets_escalate_to_the_full_budget() {
        assert_eq!(rung_targets(20, 4, 200), vec![20, 80, 200]);
        assert_eq!(rung_targets(25, 2, 200), vec![25, 50, 100, 200]);
        assert_eq!(rung_targets(50, 4, 200), vec![50, 200]);
    }

    #[test]
    fn rung_targets_handle_degenerate_inputs() {
        // First rung at or above the budget: a single full-budget rung.
        assert_eq!(rung_targets(200, 4, 200), vec![200]);
        assert_eq!(rung_targets(500, 4, 200), vec![200]);
        // Zero first rung is clamped to 1; eta below 2 is clamped to 2.
        assert_eq!(rung_targets(0, 1, 4), vec![1, 2, 4]);
    }

    #[test]
    fn rung_targets_are_strictly_increasing() {
        for first in [1usize, 7, 20, 100] {
            for eta in [2usize, 3, 4, 10] {
                let t = rung_targets(first, eta, 200);
                assert!(t.windows(2).all(|w| w[0] < w[1]), "{t:?}");
                assert_eq!(*t.last().unwrap(), 200);
            }
        }
    }
}
