//! The content-addressed result cache behind `qas serve --cache-dir`:
//! never compute the same search twice.
//!
//! Searches are deterministic — bit-identical across thread counts,
//! resume, and crash recovery — so a finished [`SearchOutcome`] is a pure
//! function of the job's `(SearchConfig, graphs)`: seed, problem family,
//! backend, and budget all live inside the config. The serve path
//! therefore keys completed outcomes by a canonical JSON rendering of
//! exactly those two fields ([`spec_cache_key`]); scheduling metadata
//! (name, priority, deadline, retry budget) never changes the result and
//! is excluded from the key.
//!
//! Keys are FNV-1a 64 hashes of the canonical rendering. Every lookup
//! re-compares the stored canonical string, so a hash collision degrades
//! to a miss — never a wrong result (the same guard discipline as the
//! evaluator memo in [`crate::evaluator`]).
//!
//! With a directory configured ([`CacheConfig::dir`]) the cache doubles as
//! a durable tier: inserts and evictions are journaled through the same
//! crc32-framed WAL as the job store ([`crate::store`]), so hits survive
//! restarts. A crash mid-`CachePut` tears at most the record being
//! written; replay drops the torn tail whole, so a recovered cache never
//! serves a partial outcome. Journal append failures degrade the cache to
//! memory-only with a warning — caching is an optimization and must never
//! take the serving path down.

use crate::error::SearchError;
use crate::search::SearchOutcome;
use crate::server::JobSpec;
use crate::store::{JobStore, JournalRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// The content-addressed identity of a job's search: a stable hash plus
/// the canonical rendering it was computed from (kept as the
/// full-equality guard on lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecKey {
    /// FNV-1a 64 hash of [`SpecKey::canonical`].
    pub hash: u64,
    /// Canonical `{"config":…,"graphs":…}` JSON of the spec's
    /// result-determining fields.
    pub canonical: String,
}

impl SpecKey {
    /// The key as 16 lowercase hex digits (protocol/event rendering).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// Compute the content-addressed cache key of a job spec.
///
/// Two specs map to the same key iff their `config` and `graphs`
/// serialize identically — the exact precondition for their outcomes
/// being bit-identical. Serialization is the crate's own vendored
/// `serde_json` (deterministic field order), the same rendering the
/// journal trusts for replay.
pub fn spec_cache_key(spec: &JobSpec) -> Result<SpecKey, SearchError> {
    let config = serde_json::to_string(&spec.config).map_err(|e| SearchError::Store {
        message: format!("serialize spec config for cache key: {e}"),
    })?;
    let graphs = serde_json::to_string(&spec.graphs).map_err(|e| SearchError::Store {
        message: format!("serialize spec graphs for cache key: {e}"),
    })?;
    let canonical = format!("{{\"config\":{config},\"graphs\":{graphs}}}");
    let hash = fnv1a64(canonical.as_bytes());
    Ok(SpecKey { hash, canonical })
}

/// FNV-1a 64 over `bytes` — tiny, stable across platforms and Rust
/// versions (unlike `DefaultHasher`), which the durable tier requires:
/// journaled keys must still match after a toolchain upgrade.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rendezvous (highest-random-weight) routing of a content key over a
/// candidate shard set: `argmax_s fnv1a64(key ‖ s)`, ties broken toward
/// the smaller shard id.
///
/// This is how [`crate::cluster::Coordinator`] places submissions:
/// identical specs (same [`SpecKey::hash`]) always land on the same
/// shard, so cluster-wide dedupe and coalescing fall out of each shard's
/// single-node [`ResultCache`]. Rendezvous hashing is stable under
/// membership change — when a shard dies, only the keys it owned move
/// (each to its second-highest choice); every other key keeps its shard,
/// so a failure never scatters the cluster's cache affinity.
pub fn rendezvous_route(key: u64, shards: &[u64]) -> Option<u64> {
    shards.iter().copied().max_by_key(|&shard| {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&key.to_le_bytes());
        bytes[8..].copy_from_slice(&shard.to_le_bytes());
        (fnv1a64(&bytes), std::cmp::Reverse(shard))
    })
}

/// Configuration of the serve-path caching tier
/// ([`crate::server::ServerOptions::cache`]).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum completed outcomes retained (LRU beyond this).
    pub capacity: usize,
    /// Journal the cache under this directory so hits survive restarts
    /// (`None` = in-memory only). Must not be the job store's state dir —
    /// each journal has exactly one writer.
    pub dir: Option<PathBuf>,
    /// Bound on the server-scoped shared energy-evaluator memo
    /// ([`crate::evaluator::EnergyCache`]) that distinct-but-overlapping
    /// jobs reuse classical reference state through.
    pub evaluator_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 256,
            dir: None,
            evaluator_capacity: 64,
        }
    }
}

impl CacheConfig {
    /// An in-memory cache with the given result capacity.
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity,
            ..CacheConfig::default()
        }
    }

    /// Make the cache durable under `dir`.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> CacheConfig {
        self.dir = Some(dir.into());
        self
    }
}

/// Point-in-time counters of the caching tier (surfaced by the `stats`
/// protocol request and [`crate::server::JobServer::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Result-cache entries currently held.
    pub entries: usize,
    /// Result-cache capacity.
    pub capacity: usize,
    /// Submissions answered instantly from the result cache.
    pub hits: u64,
    /// Submissions that had to execute (no cached or in-flight twin).
    pub misses: u64,
    /// Submissions attached as followers of an in-flight execution.
    pub coalesced: u64,
    /// Outcomes inserted into the result cache.
    pub insertions: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Whether the cache journals to disk.
    pub durable: bool,
}

struct CacheEntry {
    canonical: String,
    outcome: Arc<SearchOutcome>,
    last_used: u64,
}

/// The in-memory LRU over completed outcomes, optionally backed by a
/// durable journal. Not internally synchronized — the server wraps it in
/// its own mutex.
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<u64, CacheEntry>,
    /// Monotonic LRU clock (bumped per touch).
    tick: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    insertions: u64,
    evictions: u64,
    store: Option<JobStore>,
}

impl ResultCache {
    /// Open the cache: replay the journal when a directory is configured
    /// (most-recently-written entries win when over capacity). Returns the
    /// cache and the number of entries recovered from disk.
    pub fn open(config: &CacheConfig) -> Result<(ResultCache, usize), SearchError> {
        let capacity = config.capacity.max(1);
        let mut cache = ResultCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            coalesced: 0,
            insertions: 0,
            evictions: 0,
            store: None,
        };
        if let Some(dir) = &config.dir {
            let (store, replayed) = JobStore::open(dir)?;
            cache.store = store.into();
            // Replay order is least-recently-written first; folding in
            // order seeds the LRU clock so over-capacity opens (capacity
            // shrank across restarts) drop the oldest entries.
            for entry in replayed.cache {
                let tick = cache.next_tick();
                cache.entries.insert(
                    entry.key,
                    CacheEntry {
                        canonical: entry.canonical,
                        outcome: Arc::new(entry.outcome),
                        last_used: tick,
                    },
                );
            }
            cache.evict_over_capacity();
        }
        let recovered = cache.entries.len();
        Ok((cache, recovered))
    }

    /// Look up a completed outcome. Counts a hit and refreshes recency on
    /// success; a hash collision with a different canonical spec is a miss
    /// (the caller decides whether that miss coalesces or executes, so it
    /// is not counted here — see [`ResultCache::note_miss`]).
    pub fn lookup(&mut self, key: &SpecKey) -> Option<Arc<SearchOutcome>> {
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&key.hash)?;
        if entry.canonical != key.canonical {
            return None;
        }
        entry.last_used = tick;
        self.hits += 1;
        Some(Arc::clone(&entry.outcome))
    }

    /// Count a submission that proceeds to execute.
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Count a submission that attached to an in-flight execution.
    pub fn note_coalesced(&mut self) {
        self.coalesced += 1;
    }

    /// Store a completed outcome, journaling it when durable and evicting
    /// LRU entries beyond capacity.
    pub fn insert(&mut self, key: &SpecKey, outcome: Arc<SearchOutcome>) {
        self.journal(&JournalRecord::CachePut {
            key: key.hash,
            canonical: key.canonical.clone(),
            outcome: (*outcome).clone(),
        });
        let tick = self.next_tick();
        self.entries.insert(
            key.hash,
            CacheEntry {
                canonical: key.canonical.clone(),
                outcome,
                last_used: tick,
            },
        );
        self.insertions += 1;
        self.evict_over_capacity();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            coalesced: self.coalesced,
            insertions: self.insertions,
            evictions: self.evictions,
            durable: self.store.is_some(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
            else {
                break;
            };
            self.entries.remove(&oldest);
            self.evictions += 1;
            self.journal(&JournalRecord::CacheEvict { key: oldest });
        }
    }

    fn journal(&mut self, record: &JournalRecord) {
        if let Some(store) = &mut self.store {
            if let Err(e) = store.append(record) {
                eprintln!("[qas-serve] cache journal append failed (entry kept in memory): {e}");
            }
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("durable", &self.store.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::GateAlphabet;
    use crate::search::{BestCandidate, SearchConfig};
    use graphs::Graph;
    use qaoa::Backend;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qas-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> JobSpec {
        let config = SearchConfig::builder()
            .alphabet(GateAlphabet::from_mnemonics(&["rx"]).unwrap())
            .max_depth(1)
            .max_gates_per_mixer(1)
            .optimizer_budget(10)
            .no_prune()
            .backend(Backend::StateVector)
            .threads(1)
            .seed(seed)
            .build();
        JobSpec::new(config, vec![Graph::cycle(4)])
    }

    fn outcome(label: &str) -> Arc<SearchOutcome> {
        Arc::new(SearchOutcome {
            problem: "maxcut".to_string(),
            best: BestCandidate {
                gates: Vec::new(),
                mixer_label: label.to_string(),
                depth: 1,
                energy: 0.0,
                approx_ratio: 0.0,
            },
            depth_results: Vec::new(),
            total_elapsed_seconds: 0.0,
            num_candidates_evaluated: 0,
            total_optimizer_evaluations: 0,
            full_budget_evaluations: 0,
            parallel_threads: None,
        })
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Offset basis for the empty input, then the published vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn rendezvous_is_deterministic_and_total() {
        assert_eq!(rendezvous_route(42, &[]), None);
        assert_eq!(rendezvous_route(42, &[7]), Some(7));
        let shards = [0u64, 1, 2, 3];
        let mut owners = [0usize; 4];
        for key in 0..512u64 {
            let owner = rendezvous_route(key, &shards).unwrap();
            assert_eq!(rendezvous_route(key, &shards), Some(owner));
            owners[owner as usize] += 1;
        }
        // Every shard owns a share of the key space.
        assert!(owners.iter().all(|&n| n > 0), "owners: {owners:?}");
    }

    #[test]
    fn rendezvous_only_moves_the_dead_shards_keys() {
        let full = [0u64, 1, 2];
        let survivors = [0u64, 2];
        for key in 0..512u64 {
            let before = rendezvous_route(key, &full).unwrap();
            let after = rendezvous_route(key, &survivors).unwrap();
            if before != 1 {
                // Keys owned by a surviving shard never move on failure.
                assert_eq!(before, after, "key {key} moved off a live shard");
            } else {
                assert!(survivors.contains(&after));
            }
        }
    }

    #[test]
    fn key_ignores_scheduling_metadata_but_not_the_seed() {
        let base = spec_cache_key(&spec(1)).unwrap();
        let renamed = spec_cache_key(
            &spec(1)
                .name("other")
                .priority(9)
                .timeout_secs(5.0)
                .max_retries(3),
        )
        .unwrap();
        assert_eq!(base, renamed, "scheduling metadata must not change the key");
        let reseeded = spec_cache_key(&spec(2)).unwrap();
        assert_ne!(base.hash, reseeded.hash, "the seed is part of the content");
        let regraphed = spec_cache_key(&JobSpec {
            graphs: vec![Graph::cycle(5)],
            ..spec(1)
        })
        .unwrap();
        assert_ne!(base.hash, regraphed.hash, "graphs are part of the content");
    }

    #[test]
    fn lookup_guards_against_hash_collisions() {
        let (mut cache, _) = ResultCache::open(&CacheConfig::with_capacity(4)).unwrap();
        let key = spec_cache_key(&spec(1)).unwrap();
        cache.insert(&key, outcome("a"));
        assert!(cache.lookup(&key).is_some());
        // A forged key with the same hash but different canonical bytes
        // (what a collision would look like) must miss.
        let forged = SpecKey {
            hash: key.hash,
            canonical: "not-the-same-spec".to_string(),
        };
        assert!(cache.lookup(&forged).is_none());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let (mut cache, _) = ResultCache::open(&CacheConfig::with_capacity(2)).unwrap();
        let k1 = spec_cache_key(&spec(1)).unwrap();
        let k2 = spec_cache_key(&spec(2)).unwrap();
        let k3 = spec_cache_key(&spec(3)).unwrap();
        cache.insert(&k1, outcome("1"));
        cache.insert(&k2, outcome("2"));
        // Touch k1 so k2 is the LRU entry when k3 arrives.
        assert!(cache.lookup(&k1).is_some());
        cache.insert(&k3, outcome("3"));
        assert!(cache.lookup(&k1).is_some());
        assert!(cache.lookup(&k2).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(&k3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn durable_cache_survives_reopen() {
        let dir = tmp_dir("durable");
        let config = CacheConfig::with_capacity(4).durable(&dir);
        let key = spec_cache_key(&spec(7)).unwrap();
        {
            let (mut cache, recovered) = ResultCache::open(&config).unwrap();
            assert_eq!(recovered, 0);
            cache.insert(&key, outcome("persisted"));
        }
        let (mut cache, recovered) = ResultCache::open(&config).unwrap();
        assert_eq!(recovered, 1);
        let hit = cache.lookup(&key).expect("entry recovered from journal");
        assert_eq!(hit.best.mixer_label, "persisted");
        assert!(cache.stats().durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
