//! Property-based tests for graphs and Max-Cut.

use crate::graph::Graph;
use crate::maxcut::MaxCut;
use proptest::prelude::*;

fn arb_er_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, 0.0f64..1.0, any::<u64>()).prop_map(|(n, p, seed)| Graph::erdos_renyi(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn er_edge_count_within_bounds(g in arb_er_graph()) {
        let n = g.num_nodes();
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    #[test]
    fn handshake_lemma(g in arb_er_graph()) {
        let degree_sum: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn cut_value_bounded_by_total_weight(g in arb_er_graph(), mask in any::<u64>()) {
        let cut = MaxCut::cut_value_mask(&g, mask);
        prop_assert!(cut >= -1e-12);
        prop_assert!(cut <= g.total_weight() + 1e-12);
    }

    #[test]
    fn complementary_assignments_have_equal_cut(g in arb_er_graph(), mask in any::<u64>()) {
        let n = g.num_nodes();
        let full = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let cut = MaxCut::cut_value_mask(&g, mask & full);
        let cut_comp = MaxCut::cut_value_mask(&g, (!mask) & full);
        prop_assert!((cut - cut_comp).abs() < 1e-9);
    }

    #[test]
    fn brute_force_dominates_heuristics(g in arb_er_graph()) {
        let exact = MaxCut::brute_force(&g).unwrap().value;
        let (greedy, _) = MaxCut::greedy(&g);
        let (local, _) = MaxCut::local_search(&g, None);
        prop_assert!(greedy <= exact + 1e-9);
        prop_assert!(local <= exact + 1e-9);
        // Greedy achieves at least half of the total weight.
        prop_assert!(greedy + 1e-9 >= 0.5 * g.total_weight());
    }

    #[test]
    fn spins_and_mask_cut_values_agree(g in arb_er_graph(), mask in any::<u64>()) {
        let n = g.num_nodes();
        let spins: Vec<i8> = (0..n).map(|i| if (mask >> i) & 1 == 1 { 1 } else { -1 }).collect();
        let by_mask = MaxCut::cut_value_mask(&g, mask);
        let by_spins = MaxCut::cut_value_spins(&g, &spins);
        prop_assert!((by_mask - by_spins).abs() < 1e-9);
    }

    #[test]
    fn random_regular_always_regular(n_half in 3usize..7, d in 2usize..4, seed in any::<u64>()) {
        let n = n_half * 2;
        prop_assume!(d < n);
        if let Ok(g) = Graph::random_regular(n, d, seed) {
            prop_assert!(g.is_regular(d));
        }
    }
}
