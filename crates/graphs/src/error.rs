//! Error types for graph construction and generation.

use thiserror::Error;

/// Errors arising from graph construction or random generation.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a node outside `0..num_nodes`.
    #[error("node index {index} out of range for graph with {num_nodes} nodes")]
    NodeOutOfRange {
        /// Offending node index.
        index: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },

    /// Self-loops are not allowed in Max-Cut instances.
    #[error("self-loop on node {node} is not allowed")]
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },

    /// A `d`-regular graph with these parameters cannot exist.
    #[error("no {degree}-regular graph exists on {nodes} nodes (n*d must be even and d < n)")]
    InfeasibleRegularGraph {
        /// Requested node count.
        nodes: usize,
        /// Requested degree.
        degree: usize,
    },

    /// Random regular generation failed after the retry budget.
    #[error("random regular graph generation failed after {attempts} attempts")]
    RegularGenerationFailed {
        /// Number of attempts made.
        attempts: usize,
    },

    /// Brute-force Max-Cut was asked for a graph that is too large.
    #[error("graph with {nodes} nodes is too large for exact enumeration (max {max})")]
    TooLargeForExact {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Enumeration limit.
        max: usize,
    },
}
