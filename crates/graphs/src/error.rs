//! Error types for graph construction and generation, plus the shared
//! [`ParseKindError`] used by every `FromStr` kind-enum in the suite.

use thiserror::Error;

/// A CLI-facing enum name failed to parse.
///
/// Shared by every kind enum in the suite that implements `FromStr`
/// ([`crate::ProblemKind`], `qaoa::Backend`, `optim::OptimizerKind`), so
/// front ends handle exactly one parse error type. `expected` lists the
/// accepted spellings verbatim for the error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKindError {
    /// What was being parsed ("problem", "backend", "optimizer").
    pub what: &'static str,
    /// The rejected input.
    pub given: String,
    /// Comma-separated accepted spellings.
    pub expected: &'static str,
}

impl ParseKindError {
    /// A new parse error for `what` with the given input and the accepted
    /// spellings.
    pub fn new(what: &'static str, given: &str, expected: &'static str) -> ParseKindError {
        ParseKindError {
            what,
            given: given.to_string(),
            expected,
        }
    }
}

impl std::fmt::Display for ParseKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown {} '{}' (expected one of: {})",
            self.what, self.given, self.expected
        )
    }
}

impl std::error::Error for ParseKindError {}

/// Errors arising from graph construction or random generation.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a node outside `0..num_nodes`.
    #[error("node index {index} out of range for graph with {num_nodes} nodes")]
    NodeOutOfRange {
        /// Offending node index.
        index: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },

    /// Self-loops are not allowed in Max-Cut instances.
    #[error("self-loop on node {node} is not allowed")]
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },

    /// A `d`-regular graph with these parameters cannot exist.
    #[error("no {degree}-regular graph exists on {nodes} nodes (n*d must be even and d < n)")]
    InfeasibleRegularGraph {
        /// Requested node count.
        nodes: usize,
        /// Requested degree.
        degree: usize,
    },

    /// Random regular generation failed after the retry budget.
    #[error("random regular graph generation failed after {attempts} attempts")]
    RegularGenerationFailed {
        /// Number of attempts made.
        attempts: usize,
    },

    /// Brute-force Max-Cut was asked for a graph that is too large.
    #[error("graph with {nodes} nodes is too large for exact enumeration (max {max})")]
    TooLargeForExact {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Enumeration limit.
        max: usize,
    },
}
