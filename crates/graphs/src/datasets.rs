//! The instance collections used by the paper's experiments.
//!
//! §3.1: "a dataset of 20, 10-node Erdős–Rényi graphs with varying degrees of
//! connectivity". §3.2: "a separate dataset of 20, 10 node random 4-regular
//! graphs". These constructors regenerate seeded equivalents of those
//! datasets so every figure harness sees the same graphs.

use crate::graph::Graph;

/// Default node count of the paper's instances.
pub const PAPER_NUM_NODES: usize = 10;
/// Default instance count per dataset in the paper.
pub const PAPER_DATASET_SIZE: usize = 20;
/// Degree of the random regular evaluation graphs.
pub const PAPER_REGULAR_DEGREE: usize = 4;

/// The profiling / search dataset: `count` Erdős–Rényi graphs on `n` nodes
/// with edge probabilities swept over a range ("varying degrees of
/// connectivity"), deterministically seeded from `base_seed`.
pub fn erdos_renyi_dataset(count: usize, n: usize, base_seed: u64) -> Vec<Graph> {
    (0..count)
        .map(|i| {
            // Sweep p from 0.3 to 0.7 across the dataset.
            let p = if count <= 1 {
                0.5
            } else {
                0.3 + 0.4 * (i as f64) / ((count - 1) as f64)
            };
            Graph::connected_erdos_renyi(n, p, base_seed.wrapping_add(i as u64), 50)
        })
        .collect()
}

/// The generalization dataset: `count` random `degree`-regular graphs on `n`
/// nodes, deterministically seeded from `base_seed`.
pub fn random_regular_dataset(count: usize, n: usize, degree: usize, base_seed: u64) -> Vec<Graph> {
    (0..count)
        .map(|i| {
            // Each instance retries seeds until the configuration model
            // produces a simple d-regular graph (always succeeds quickly for
            // n=10, d=4).
            let mut seed = base_seed.wrapping_add(i as u64);
            loop {
                match Graph::random_regular(n, degree, seed) {
                    Ok(g) => return g,
                    Err(_) => seed = seed.wrapping_add(0x9E37_79B9),
                }
            }
        })
        .collect()
}

/// The paper's §3.1 dataset with default sizes (20 ER graphs, 10 nodes).
pub fn paper_profiling_dataset(base_seed: u64) -> Vec<Graph> {
    erdos_renyi_dataset(PAPER_DATASET_SIZE, PAPER_NUM_NODES, base_seed)
}

/// The paper's §3.2 dataset with default sizes (20 random 4-regular graphs,
/// 10 nodes).
pub fn paper_evaluation_dataset(base_seed: u64) -> Vec<Graph> {
    random_regular_dataset(
        PAPER_DATASET_SIZE,
        PAPER_NUM_NODES,
        PAPER_REGULAR_DEGREE,
        base_seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_dataset_has_requested_shape() {
        let ds = erdos_renyi_dataset(20, 10, 7);
        assert_eq!(ds.len(), 20);
        for g in &ds {
            assert_eq!(g.num_nodes(), 10);
        }
    }

    #[test]
    fn er_dataset_densities_vary() {
        let ds = erdos_renyi_dataset(20, 10, 7);
        let densities: Vec<f64> = ds.iter().map(|g| g.density()).collect();
        let min = densities.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = densities.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.1, "densities should vary across the dataset");
    }

    #[test]
    fn er_dataset_is_reproducible() {
        assert_eq!(
            erdos_renyi_dataset(5, 10, 99),
            erdos_renyi_dataset(5, 10, 99)
        );
    }

    #[test]
    fn regular_dataset_is_4_regular() {
        let ds = paper_evaluation_dataset(11);
        assert_eq!(ds.len(), PAPER_DATASET_SIZE);
        for g in &ds {
            assert_eq!(g.num_nodes(), PAPER_NUM_NODES);
            assert!(g.is_regular(PAPER_REGULAR_DEGREE));
        }
    }

    #[test]
    fn regular_dataset_is_reproducible() {
        assert_eq!(
            random_regular_dataset(5, 10, 4, 3),
            random_regular_dataset(5, 10, 4, 3)
        );
    }

    #[test]
    fn single_element_dataset_uses_mid_p() {
        let ds = erdos_renyi_dataset(1, 10, 5);
        assert_eq!(ds.len(), 1);
    }
}
