//! # graphs — graph generation and Max-Cut machinery
//!
//! The QArchSearch paper drives its architecture search with the Max-Cut QAOA
//! application. Its experiments use two families of instances:
//!
//! * 20 Erdős–Rényi graphs on 10 nodes with varying connectivity (the search /
//!   profiling dataset of §3.1 and Fig. 4–5), and
//! * 20 random 4-regular graphs on 10 nodes (the generalization dataset of
//!   §3.2 and Fig. 7–9).
//!
//! This crate provides:
//!
//! * [`Graph`] — a simple undirected weighted graph with an edge list
//!   representation (what both the QAOA cost layer and the tensor-network
//!   light cone construction need),
//! * [`generators`] — Erdős–Rényi `G(n, p)`, random `d`-regular
//!   (configuration-model with rejection), cycle/complete/star helpers,
//! * [`maxcut`] — cut values, exact Max-Cut by enumeration (suitable for the
//!   n = 10 instances of the paper), and greedy + local-search heuristics used
//!   as the classical reference `C_classical` in the approximation ratio
//!   r = ⟨C⟩ / C_classical (Eq. 3),
//! * [`problem`] — the pluggable diagonal-cost-Hamiltonian layer: [`Problem`]
//!   generalizes Max-Cut to arbitrary diagonal objectives (weighted Max-Cut,
//!   Max Independent Set, Sherrington–Kirkpatrick, number partitioning, …)
//!   with generic exact/heuristic classical reference solvers,
//! * [`datasets`] — the exact instance collections used by the experiment
//!   harness (seeded, hence reproducible).

pub mod datasets;
pub mod error;
pub mod generators;
pub mod graph;
pub mod maxcut;
pub mod metrics;
pub mod problem;

pub use error::{GraphError, ParseKindError};
pub use graph::{Edge, Graph, GraphKind};
pub use maxcut::{BruteForceResult, MaxCut};
pub use problem::{
    ClassicalSolution, CostTerm, ExactSolution, Problem, ProblemKind, RatioConvention,
    SolutionQuality,
};

#[cfg(test)]
mod proptests;
