//! Structural graph metrics used for dataset characterization.
//!
//! The paper's profiling dataset is described only as ER graphs "with varying
//! degrees of connectivity"; the reporting in `EXPERIMENTS.md` and the figure
//! harness characterize the generated instances with the metrics here so a
//! reader can judge how close a regenerated dataset is to the paper's.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of one graph instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Edge density in `[0, 1]`.
    pub density: f64,
    /// Average degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of triangles.
    pub triangles: usize,
    /// Global clustering coefficient (transitivity).
    pub clustering: f64,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Number of connected components.
    pub components: usize,
}

impl Graph {
    /// Number of triangles in the graph.
    pub fn triangle_count(&self) -> usize {
        let mut count = 0;
        for e in self.edges() {
            // Triangles through edge (u, v): common neighbours of u and v.
            let neigh_u: std::collections::BTreeSet<usize> =
                self.neighbors(e.u).iter().map(|&(w, _)| w).collect();
            count += self
                .neighbors(e.v)
                .iter()
                .filter(|&&(w, _)| neigh_u.contains(&w))
                .count();
        }
        // Each triangle is counted once per edge, i.e. three times.
        count / 3
    }

    /// Global clustering coefficient: `3 × triangles / number of connected
    /// triples` (0 when the graph has no paths of length two).
    pub fn clustering_coefficient(&self) -> f64 {
        let triples: usize = (0..self.num_nodes())
            .map(|v| {
                let d = self.degree(v);
                d * d.saturating_sub(1) / 2
            })
            .sum();
        if triples == 0 {
            return 0.0;
        }
        3.0 * self.triangle_count() as f64 / triples as f64
    }

    /// Number of connected components (an empty graph has zero components).
    pub fn connected_components(&self) -> usize {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                for &(w, _) in self.neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Degree histogram: `histogram[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; self.max_degree() + 1];
        for v in 0..self.num_nodes() {
            histogram[self.degree(v)] += 1;
        }
        histogram
    }

    /// All summary metrics in one struct.
    pub fn summary(&self) -> GraphSummary {
        GraphSummary {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            density: self.density(),
            average_degree: self.average_degree(),
            max_degree: self.max_degree(),
            triangles: self.triangle_count(),
            clustering: self.clustering_coefficient(),
            connected: self.is_connected(),
            components: self.connected_components(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_count_on_known_graphs() {
        assert_eq!(Graph::complete(3).triangle_count(), 1);
        assert_eq!(Graph::complete(4).triangle_count(), 4);
        assert_eq!(Graph::complete(5).triangle_count(), 10);
        assert_eq!(Graph::cycle(5).triangle_count(), 0);
        assert_eq!(Graph::star(6).triangle_count(), 0);
    }

    #[test]
    fn clustering_coefficient_extremes() {
        // Complete graphs are perfectly clustered; trees/cycles (n > 3) are not.
        assert!((Graph::complete(5).clustering_coefficient() - 1.0).abs() < 1e-12);
        assert_eq!(Graph::cycle(6).clustering_coefficient(), 0.0);
        assert_eq!(Graph::star(5).clustering_coefficient(), 0.0);
        assert_eq!(Graph::empty(4).clustering_coefficient(), 0.0);
    }

    #[test]
    fn connected_components_counts() {
        assert_eq!(Graph::cycle(5).connected_components(), 1);
        // Components: {0,1}, {2,3}, {4}, {5}.
        let disconnected = Graph::from_edges(6, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(disconnected.connected_components(), 4);
        assert_eq!(Graph::empty(0).connected_components(), 0);
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = Graph::erdos_renyi(12, 0.4, 9);
        let histogram = g.degree_histogram();
        assert_eq!(histogram.iter().sum::<usize>(), 12);
        // Weighted sum of degrees equals twice the edge count.
        let degree_sum: usize = histogram.iter().enumerate().map(|(d, &n)| d * n).sum();
        assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn summary_is_consistent_with_individual_metrics() {
        let g = Graph::random_regular(10, 4, 3).unwrap();
        let s = g.summary();
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 20);
        assert_eq!(s.max_degree, 4);
        assert!((s.average_degree - 4.0).abs() < 1e-12);
        assert_eq!(s.triangles, g.triangle_count());
        assert_eq!(s.connected, g.is_connected());
        assert_eq!(s.components, g.connected_components());
    }
}
