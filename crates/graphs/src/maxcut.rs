//! Max-Cut cost evaluation and classical reference solvers.
//!
//! The QAOA cost function of the paper (Eq. 1) is
//!
//! ```text
//! C_MC(z) = 1/2 Σ_{(u,v) ∈ E} w_uv (1 - z_u z_v),   z_i ∈ {-1, +1}
//! ```
//!
//! i.e. the (weighted) number of edges that cross the partition. The
//! approximation ratio of Eq. 3 divides the QAOA expectation ⟨C⟩ by the best
//! classically-known cut `C_classical`; for the 10-node instances of the paper
//! the exact optimum is computable by enumeration, which is what
//! [`MaxCut::brute_force`] does. A greedy + 1-flip local-search heuristic is
//! provided for larger instances.

use crate::error::GraphError;
use crate::graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of an exact (brute-force) Max-Cut computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BruteForceResult {
    /// The optimal cut value.
    pub value: f64,
    /// One optimal assignment as a bitmask (bit i = 1 means node i is in
    /// partition "+1").
    pub assignment: u64,
    /// Number of optimal assignments found (each cut counted twice, once per
    /// complementary labelling).
    pub num_optima: usize,
}

/// Max-Cut utilities over a [`Graph`].
pub struct MaxCut;

impl MaxCut {
    /// Enumeration limit for exact solving (2^26 assignments ≈ 67M).
    pub const EXACT_NODE_LIMIT: usize = 26;

    /// Cut value of a ±1 assignment given as a slice of spins.
    ///
    /// `spins[i]` must be `+1` or `-1`; any positive value is treated as `+1`.
    pub fn cut_value_spins(graph: &Graph, spins: &[i8]) -> f64 {
        graph
            .edges()
            .iter()
            .map(|e| {
                let zu = if spins[e.u] > 0 { 1.0 } else { -1.0 };
                let zv = if spins[e.v] > 0 { 1.0 } else { -1.0 };
                0.5 * e.weight * (1.0 - zu * zv)
            })
            .sum()
    }

    /// Cut value of an assignment given as a bitmask.
    pub fn cut_value_mask(graph: &Graph, mask: u64) -> f64 {
        graph
            .edges()
            .iter()
            .map(|e| {
                let bu = (mask >> e.u) & 1;
                let bv = (mask >> e.v) & 1;
                if bu != bv {
                    e.weight
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Exact Max-Cut by exhaustive enumeration. Only feasible for
    /// `n <= EXACT_NODE_LIMIT`; the paper's 10-node instances enumerate 1024
    /// assignments.
    pub fn brute_force(graph: &Graph) -> Result<BruteForceResult, GraphError> {
        let n = graph.num_nodes();
        if n > Self::EXACT_NODE_LIMIT {
            return Err(GraphError::TooLargeForExact {
                nodes: n,
                max: Self::EXACT_NODE_LIMIT,
            });
        }
        if n == 0 {
            return Ok(BruteForceResult {
                value: 0.0,
                assignment: 0,
                num_optima: 1,
            });
        }
        let mut best = f64::NEG_INFINITY;
        let mut best_mask = 0u64;
        let mut num_optima = 0usize;
        // Fixing node 0's side halves the search space without losing optima.
        for mask in 0..(1u64 << (n - 1)) {
            let value = Self::cut_value_mask(graph, mask);
            if value > best + 1e-12 {
                best = value;
                best_mask = mask;
                num_optima = 2; // the complement achieves the same cut
            } else if (value - best).abs() <= 1e-12 {
                num_optima += 2;
            }
        }
        Ok(BruteForceResult {
            value: best.max(0.0),
            assignment: best_mask,
            num_optima,
        })
    }

    /// Greedy constructive heuristic: place nodes one at a time on the side
    /// that maximizes the cut so far.
    pub fn greedy(graph: &Graph) -> (f64, Vec<i8>) {
        let n = graph.num_nodes();
        let mut spins: Vec<i8> = vec![0; n];
        for v in 0..n {
            // Gain of putting v on +1 vs -1 given already-placed neighbours.
            let mut gain_plus = 0.0;
            let mut gain_minus = 0.0;
            for &(w, weight) in graph.neighbors(v) {
                match spins[w] {
                    1 => gain_minus += weight,
                    -1 => gain_plus += weight,
                    _ => {}
                }
            }
            spins[v] = if gain_plus >= gain_minus { 1 } else { -1 };
        }
        (Self::cut_value_spins(graph, &spins), spins)
    }

    /// 1-flip local search started from `start` (or the greedy solution when
    /// `start` is `None`). Repeatedly flips the single node with the largest
    /// positive gain until no improving flip exists.
    pub fn local_search(graph: &Graph, start: Option<Vec<i8>>) -> (f64, Vec<i8>) {
        let mut spins = start.unwrap_or_else(|| Self::greedy(graph).1);
        if spins.len() != graph.num_nodes() {
            spins = vec![1; graph.num_nodes()];
        }
        loop {
            let mut best_gain = 0.0;
            let mut best_node = None;
            for v in 0..graph.num_nodes() {
                // Gain of flipping v: edges to same-side neighbours become cut,
                // edges to other-side neighbours become uncut.
                let mut gain = 0.0;
                for &(w, weight) in graph.neighbors(v) {
                    if spins[v] == spins[w] {
                        gain += weight;
                    } else {
                        gain -= weight;
                    }
                }
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_node = Some(v);
                }
            }
            match best_node {
                Some(v) => spins[v] = -spins[v],
                None => break,
            }
        }
        (Self::cut_value_spins(graph, &spins), spins)
    }

    /// Multi-start randomized local search: `restarts` random initial
    /// assignments, each improved by 1-flip local search; the best is kept.
    pub fn randomized_local_search(graph: &Graph, restarts: usize, seed: u64) -> (f64, Vec<i8>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = graph.num_nodes();
        let mut best_value = f64::NEG_INFINITY;
        let mut best_spins = vec![1i8; n];
        for _ in 0..restarts.max(1) {
            let start: Vec<i8> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect();
            let (value, spins) = Self::local_search(graph, Some(start));
            if value > best_value {
                best_value = value;
                best_spins = spins;
            }
        }
        if best_value.is_infinite() {
            best_value = 0.0;
        }
        (best_value, best_spins)
    }

    /// The classical reference value `C_classical` used in the approximation
    /// ratio: exact when feasible, otherwise the best of greedy and randomized
    /// local search.
    pub fn classical_reference(graph: &Graph) -> f64 {
        match Self::brute_force(graph) {
            Ok(r) => r.value,
            Err(_) => {
                let (g, _) = Self::greedy(graph);
                let (l, _) = Self::randomized_local_search(graph, 20, 0xC1A55);
                g.max(l)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_of_single_edge() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(MaxCut::cut_value_spins(&g, &[1, -1]), 1.0);
        assert_eq!(MaxCut::cut_value_spins(&g, &[1, 1]), 0.0);
        assert_eq!(MaxCut::cut_value_mask(&g, 0b01), 1.0);
        assert_eq!(MaxCut::cut_value_mask(&g, 0b11), 0.0);
    }

    #[test]
    fn brute_force_even_cycle_cuts_all_edges() {
        let g = Graph::cycle(6);
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 6.0);
    }

    #[test]
    fn brute_force_odd_cycle_leaves_one_edge() {
        let g = Graph::cycle(5);
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn brute_force_complete_graph() {
        // K4 max cut = 2*2 = 4 edges.
        let g = Graph::complete(4);
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 4.0);
        // K5 max cut = 2*3 = 6.
        let g5 = Graph::complete(5);
        assert_eq!(MaxCut::brute_force(&g5).unwrap().value, 6.0);
    }

    #[test]
    fn brute_force_bipartite_graph_cuts_everything() {
        // A star is bipartite: all edges can be cut.
        let g = Graph::star(7);
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 6.0);
    }

    #[test]
    fn brute_force_weighted() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 3.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        // Best: separate node 1 from {0,2}: cut = 3 + 1 = 4.
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 4.0);
    }

    #[test]
    fn brute_force_assignment_achieves_value() {
        let g = Graph::erdos_renyi(10, 0.5, 42);
        let r = MaxCut::brute_force(&g).unwrap();
        assert!((MaxCut::cut_value_mask(&g, r.assignment) - r.value).abs() < 1e-12);
    }

    #[test]
    fn brute_force_rejects_large_graphs() {
        let g = Graph::empty(40);
        assert!(matches!(
            MaxCut::brute_force(&g),
            Err(GraphError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn brute_force_empty_graph() {
        let g = Graph::empty(0);
        let r = MaxCut::brute_force(&g).unwrap();
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn greedy_never_exceeds_optimum() {
        for seed in 0..10 {
            let g = Graph::erdos_renyi(10, 0.5, seed);
            let exact = MaxCut::brute_force(&g).unwrap().value;
            let (greedy, _) = MaxCut::greedy(&g);
            assert!(greedy <= exact + 1e-12);
            // Greedy cuts at least half the edges (standard guarantee).
            assert!(greedy >= 0.5 * g.total_weight() - 1e-12);
        }
    }

    #[test]
    fn local_search_improves_or_matches_greedy() {
        for seed in 0..10 {
            let g = Graph::erdos_renyi(12, 0.4, seed + 100);
            let (greedy, spins) = MaxCut::greedy(&g);
            let (local, _) = MaxCut::local_search(&g, Some(spins));
            let exact = MaxCut::brute_force(&g).unwrap().value;
            assert!(local + 1e-12 >= greedy);
            assert!(local <= exact + 1e-12);
        }
    }

    #[test]
    fn randomized_local_search_finds_optimum_on_small_graphs() {
        for seed in 0..5 {
            let g = Graph::erdos_renyi(8, 0.5, seed + 7);
            let exact = MaxCut::brute_force(&g).unwrap().value;
            let (found, _) = MaxCut::randomized_local_search(&g, 30, seed);
            assert!(
                (found - exact).abs() < 1e-9,
                "seed {seed}: {found} vs exact {exact}"
            );
        }
    }

    #[test]
    fn classical_reference_matches_exact_when_feasible() {
        let g = Graph::erdos_renyi(10, 0.5, 3);
        let exact = MaxCut::brute_force(&g).unwrap().value;
        assert!((MaxCut::classical_reference(&g) - exact).abs() < 1e-12);
    }
}
