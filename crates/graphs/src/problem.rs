//! Pluggable diagonal cost Hamiltonians — the problem layer of the search.
//!
//! The paper demonstrates QArchSearch on a single driver application (QAOA
//! for Max-Cut), but the machinery — ansatz assembly, compiled simulation,
//! light-cone contraction, budget-aware scheduling — only ever needs a cost
//! operator that is *diagonal in the computational basis*. [`Problem`]
//! captures exactly that: a polynomial over ±1 spins,
//!
//! ```text
//! C(z) = constant + Σ_t [ offset_t + coeff_t · Π_{i ∈ S_t} z_i ],   z_i ∈ {−1, +1}
//! ```
//!
//! together with the metadata the evaluator needs (a name for reports, an
//! exact/heuristic classical reference solver, and the approximation-ratio
//! convention). Every layer of the stack — `statevec`, `tensornet`, `qaoa`,
//! `qarchsearch`, the `qas` CLI — consumes this type, so adding a workload
//! means writing one constructor here instead of touching six crates.
//!
//! The per-term `offset` exists so Max-Cut keeps its historical per-edge
//! form `w·[z_u ≠ z_v] = w/2 − (w/2)·z_u z_v` with **bit-identical** floating
//! point: a cut edge contributes `offset − coeff = w/2 + w/2 = w` exactly and
//! an uncut edge `offset + coeff = w/2 − w/2 = 0` exactly, reproducing the
//! original indicator sum term by term.
//!
//! # Defining a custom problem
//!
//! Any diagonal Hamiltonian can be expressed with [`Problem::from_terms`].
//! For example, a 3-spin ferromagnetic chain with a field on the middle spin
//! (maximize `z₀z₁ + z₁z₂ + ½·z₁`):
//!
//! ```
//! use graphs::problem::{CostTerm, Problem, RatioConvention};
//!
//! let chain = Problem::from_terms(
//!     "ferro-chain",
//!     3,
//!     0.0,
//!     vec![
//!         CostTerm::new(vec![0, 1], 1.0),
//!         CostTerm::new(vec![1, 2], 1.0),
//!         CostTerm::new(vec![1], 0.5),
//!     ],
//!     RatioConvention::RatioToOptimum,
//! )
//! .unwrap();
//!
//! // All-up (mask 0) is the ground state: 1 + 1 + 0.5.
//! assert_eq!(chain.value_mask(0), 2.5);
//! let exact = chain.brute_force().unwrap();
//! assert_eq!(exact.best_value, 2.5);
//! assert_eq!(exact.best_mask, 0);
//!
//! // The classical reference records whether it is exact or heuristic.
//! let classical = chain.classical_solution();
//! assert_eq!(chain.approx_ratio(2.5, &classical), 1.0);
//! ```
//!
//! Instances of the shipped families are built through [`ProblemKind`], which
//! maps a dataset graph to a concrete [`Problem`] (deterministically, so the
//! evaluator can memoize per problem + graph).

use crate::error::{GraphError, ParseKindError};
use crate::graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One term of a diagonal cost Hamiltonian:
/// `offset + coeff · Π_{i ∈ qubits} z_i` with `z_i ∈ {−1, +1}`.
///
/// The basis-state convention matches the simulators: bit `i` **clear** means
/// `z_i = +1`, bit `i` **set** means `z_i = −1` (the eigenvalues of `Z`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTerm {
    /// The spins the term acts on, strictly increasing.
    qubits: Vec<usize>,
    /// Coefficient of the spin product.
    coeff: f64,
    /// Constant added alongside this term (kept per-term so indicator-style
    /// costs like Max-Cut evaluate with their historical rounding).
    offset: f64,
}

impl CostTerm {
    /// A term `coeff · Π z_i` with no offset.
    pub fn new(qubits: Vec<usize>, coeff: f64) -> CostTerm {
        CostTerm::with_offset(qubits, coeff, 0.0)
    }

    /// A term `offset + coeff · Π z_i`.
    pub fn with_offset(mut qubits: Vec<usize>, coeff: f64, offset: f64) -> CostTerm {
        qubits.sort_unstable();
        CostTerm {
            qubits,
            coeff,
            offset,
        }
    }

    /// The spins the term acts on (sorted, distinct).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// Coefficient of the spin product.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Constant offset carried with the term.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Number of spins in the term (its locality).
    pub fn locality(&self) -> usize {
        self.qubits.len()
    }

    /// The term's value on a basis state given as a bitmask (bit set ⇒
    /// `z = −1`).
    #[inline]
    pub fn value_mask(&self, mask: u64) -> f64 {
        let mut odd = false;
        for &q in &self.qubits {
            odd ^= (mask >> q) & 1 == 1;
        }
        if odd {
            self.offset - self.coeff
        } else {
            self.offset + self.coeff
        }
    }

    /// The term's value on an explicit spin assignment (`spins[i]` positive ⇒
    /// `z_i = +1`).
    pub fn value_spins(&self, spins: &[i8]) -> f64 {
        self.offset + self.coeff * self.product_sign(spins)
    }

    /// The signed spin product `Π z_i` under `spins`.
    fn product_sign(&self, spins: &[i8]) -> f64 {
        let odd = self.qubits.iter().filter(|&&q| spins[q] <= 0).count() % 2 == 1;
        if odd {
            -1.0
        } else {
            1.0
        }
    }
}

/// How the approximation ratio of Eq. 3 is formed from a trained energy and
/// the classical reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RatioConvention {
    /// `r = E / C_best`, and `0` when `C_best ≤ 0` — the paper's Max-Cut
    /// convention, meaningful whenever the optimum is positive.
    #[default]
    RatioToOptimum,
    /// `r = (E − C_worst) / (C_best − C_worst)` — invariant under constant
    /// shifts of the Hamiltonian, for families whose optimum can have either
    /// sign (Sherrington–Kirkpatrick).
    ShiftedByWorst,
}

/// Whether a classical reference value is provably optimal or a heuristic
/// lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolutionQuality {
    /// Exhaustive enumeration: the reference is the true optimum.
    Exact,
    /// Greedy + randomized 1-flip local search: the reference is a bound.
    Heuristic,
}

impl std::fmt::Display for SolutionQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolutionQuality::Exact => write!(f, "exact"),
            SolutionQuality::Heuristic => write!(f, "heuristic"),
        }
    }
}

/// The classical reference bracket used by approximation ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassicalSolution {
    /// Best (maximal) classically-known cost value `C_best`.
    pub best: f64,
    /// Worst (minimal) classically-known cost value `C_worst`.
    pub worst: f64,
    /// Whether the bracket is exact or heuristic.
    pub quality: SolutionQuality,
}

/// Result of exhaustively enumerating a problem's `2^n` basis states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExactSolution {
    /// The maximal cost value.
    pub best_value: f64,
    /// One maximizing assignment as a bitmask (bit set ⇒ `z = −1`).
    pub best_mask: u64,
    /// The minimal cost value.
    pub worst_value: f64,
    /// One minimizing assignment.
    pub worst_mask: u64,
    /// Number of maximizing assignments (counted with multiplicity 2 for
    /// globally flip-symmetric problems, matching the historical Max-Cut
    /// accounting).
    pub num_optima: usize,
}

/// A named diagonal cost Hamiltonian over ±1 spins, plus the metadata the
/// evaluator needs (classical reference solvers, ratio convention).
///
/// See the [module documentation](self) for the algebraic form and a worked
/// custom-problem example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    name: String,
    num_spins: usize,
    constant: f64,
    terms: Vec<CostTerm>,
    convention: RatioConvention,
}

impl Problem {
    /// Enumeration limit for [`Problem::brute_force`] in *effective* bits
    /// (n − 1 for globally flip-symmetric problems, n otherwise); 2^26 ≈ 67M
    /// assignments, matching the historical `MaxCut::brute_force` limit.
    pub const EXACT_BIT_LIMIT: usize = 26;

    /// Build a problem from raw terms.
    ///
    /// Validates that every term's qubits are within `0..num_spins` and
    /// distinct. Terms are kept in the given order — expectation values and
    /// the ansatz cost layer follow it, so the order is part of the
    /// problem's numerical identity.
    pub fn from_terms(
        name: impl Into<String>,
        num_spins: usize,
        constant: f64,
        terms: Vec<CostTerm>,
        convention: RatioConvention,
    ) -> Result<Problem, GraphError> {
        for t in &terms {
            for (i, &q) in t.qubits.iter().enumerate() {
                if q >= num_spins {
                    return Err(GraphError::NodeOutOfRange {
                        index: q,
                        num_nodes: num_spins,
                    });
                }
                // Qubits are sorted by construction, so duplicates are
                // adjacent.
                if i > 0 && t.qubits[i - 1] == q {
                    return Err(GraphError::SelfLoop { node: q });
                }
            }
        }
        Ok(Problem {
            name: name.into(),
            num_spins,
            constant,
            terms,
            convention,
        })
    }

    // --- shipped families -------------------------------------------------

    /// The (possibly weighted) Max-Cut Hamiltonian of a graph, Eq. 1 of the
    /// paper: `C(z) = ½ Σ_{(u,v)∈E} w_uv (1 − z_u z_v)`.
    ///
    /// Term order follows the graph's edge list, and each edge is stored as
    /// `offset w/2, coeff −w/2`, which evaluates bit-identically to the
    /// historical per-edge cut indicator.
    pub fn max_cut(graph: &Graph) -> Problem {
        let terms = graph
            .edges()
            .iter()
            .map(|e| CostTerm::with_offset(vec![e.u, e.v], -0.5 * e.weight, 0.5 * e.weight))
            .collect();
        Problem {
            name: "maxcut".to_string(),
            num_spins: graph.num_nodes(),
            constant: 0.0,
            terms,
            convention: RatioConvention::RatioToOptimum,
        }
    }

    /// Max-Cut from a raw `(u, v, w)` edge list over `num_spins` nodes
    /// (legacy edge-list call sites; prefer [`Problem::max_cut`]).
    pub fn max_cut_from_edges(
        num_spins: usize,
        edges: &[(usize, usize, f64)],
    ) -> Result<Problem, GraphError> {
        let terms = edges
            .iter()
            .map(|&(u, v, w)| CostTerm::with_offset(vec![u, v], -0.5 * w, 0.5 * w))
            .collect();
        Problem::from_terms(
            "maxcut",
            num_spins,
            0.0,
            terms,
            RatioConvention::RatioToOptimum,
        )
    }

    /// Weighted Max-Cut on the topology of `graph` with deterministic
    /// per-edge random weights in `[0.25, 1.75)` drawn from `seed` (in edge
    /// order). Exercises the weighted cost path on the same datasets the
    /// paper uses.
    pub fn weighted_max_cut(graph: &Graph, seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let terms = graph
            .edges()
            .iter()
            .map(|e| {
                let w = e.weight * rng.gen_range(0.25..1.75);
                CostTerm::with_offset(vec![e.u, e.v], -0.5 * w, 0.5 * w)
            })
            .collect();
        Problem {
            name: "wmaxcut".to_string(),
            num_spins: graph.num_nodes(),
            constant: 0.0,
            terms,
            convention: RatioConvention::RatioToOptimum,
        }
    }

    /// Maximum Independent Set as a penalty Ising model:
    /// `C = Σ_i x_i − P Σ_{(u,v)∈E} x_u x_v` with `x_i = (1 − z_i)/2 ∈ {0,1}`
    /// (bit set ⇒ vertex in the set). Any `penalty > 1` makes the optimum a
    /// maximum independent set with `C_best = α(G)`; minimizing the
    /// complement reads the same Hamiltonian as minimum vertex cover.
    pub fn max_independent_set(graph: &Graph, penalty: f64) -> Problem {
        let n = graph.num_nodes();
        let m = graph.num_edges() as f64;
        let mut terms: Vec<CostTerm> = graph
            .edges()
            .iter()
            .map(|e| CostTerm::new(vec![e.u, e.v], -0.25 * penalty))
            .collect();
        for i in 0..n {
            let coeff = 0.25 * penalty * graph.degree(i) as f64 - 0.5;
            if coeff != 0.0 {
                terms.push(CostTerm::new(vec![i], coeff));
            }
        }
        Problem {
            name: "mis".to_string(),
            num_spins: n,
            constant: 0.5 * n as f64 - 0.25 * penalty * m,
            terms,
            convention: RatioConvention::RatioToOptimum,
        }
    }

    /// A general 2-local Ising Hamiltonian with fields:
    /// `C(z) = Σ J_uv z_u z_v + Σ h_i z_i` (maximized).
    pub fn ising(
        name: impl Into<String>,
        num_spins: usize,
        couplings: &[(usize, usize, f64)],
        fields: &[f64],
        convention: RatioConvention,
    ) -> Result<Problem, GraphError> {
        let mut terms: Vec<CostTerm> = couplings
            .iter()
            .map(|&(u, v, j)| CostTerm::new(vec![u, v], j))
            .collect();
        for (i, &h) in fields.iter().enumerate() {
            if h != 0.0 {
                terms.push(CostTerm::new(vec![i], h));
            }
        }
        Problem::from_terms(name, num_spins, 0.0, terms, convention)
    }

    /// A Sherrington–Kirkpatrick instance on the node set of `graph`:
    /// all-to-all couplings `J_ij ~ U[−1, 1]/√n` plus small random fields
    /// `h_i ~ 0.3·U[−1, 1]`, drawn deterministically from `seed`. The graph's
    /// edges are ignored — only its node count matters — so SK slots into
    /// the same dataset-driven search harness as the graph problems. Uses the
    /// shift-invariant [`RatioConvention::ShiftedByWorst`], since the optimum
    /// of a random instance need not be positive.
    pub fn sherrington_kirkpatrick(graph: &Graph, seed: u64) -> Problem {
        let n = graph.num_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = 1.0 / (n.max(1) as f64).sqrt();
        let mut couplings = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                couplings.push((u, v, scale * rng.gen_range(-1.0..=1.0)));
            }
        }
        let fields: Vec<f64> = (0..n).map(|_| 0.3 * rng.gen_range(-1.0..=1.0)).collect();
        Problem::ising(
            "sk",
            n,
            &couplings,
            &fields,
            RatioConvention::ShiftedByWorst,
        )
        .expect("generated SK instance is well-formed")
    }

    /// Number partitioning of positive `numbers`: maximize
    /// `C(z) = A² − (Σ a_i z_i)²` with `A = Σ a_i`, i.e. minimize the squared
    /// partition residue. Expanding the square gives weighted Max-Cut on the
    /// complete graph with `w_ij = 2 a_i a_j`, so `C_best = A² − r²_min ≥ 0`
    /// and a perfect partition reaches ratio 1.
    pub fn number_partitioning(numbers: &[f64]) -> Result<Problem, GraphError> {
        let n = numbers.len();
        let mut terms = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = 2.0 * numbers[i] * numbers[j];
                terms.push(CostTerm::with_offset(vec![i, j], -w, w));
            }
        }
        Problem::from_terms("partition", n, 0.0, terms, RatioConvention::RatioToOptimum)
    }

    /// A random number-partitioning instance on the node count of `graph`:
    /// integers `a_i ∈ [1, 50]` drawn deterministically from `seed`.
    pub fn random_partition(graph: &Graph, seed: u64) -> Problem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let numbers: Vec<f64> = (0..graph.num_nodes())
            .map(|_| rng.gen_range(1u64..=50) as f64)
            .collect();
        Problem::number_partitioning(&numbers).expect("generated instance is well-formed")
    }

    // --- accessors --------------------------------------------------------

    /// The problem's report name (e.g. `"maxcut"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of spins (qubits) the Hamiltonian acts on.
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// The standalone constant added before the term sum.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The cost terms, in evaluation order.
    pub fn terms(&self) -> &[CostTerm] {
        &self.terms
    }

    /// The approximation-ratio convention.
    pub fn convention(&self) -> RatioConvention {
        self.convention
    }

    /// The largest term locality (0 for a constant Hamiltonian).
    pub fn max_locality(&self) -> usize {
        self.terms.iter().map(|t| t.locality()).max().unwrap_or(0)
    }

    /// Whether the Hamiltonian is invariant under the global spin flip
    /// `z → −z` (every term has even locality). Halves exhaustive
    /// enumeration, exactly like the historical Max-Cut solver.
    pub fn is_flip_symmetric(&self) -> bool {
        self.terms.iter().all(|t| t.locality() % 2 == 0)
    }

    // --- evaluation -------------------------------------------------------

    /// `C(z)` for a basis state given as a bitmask (bit `i` set ⇒
    /// `z_i = −1`), the convention shared with the simulators. Valid for
    /// `num_spins ≤ 64`.
    pub fn value_mask(&self, mask: u64) -> f64 {
        let mut acc = self.constant;
        for t in &self.terms {
            acc += t.value_mask(mask);
        }
        acc
    }

    /// `C(z)` for an explicit spin assignment (`spins[i]` positive ⇒ `+1`).
    pub fn value_spins(&self, spins: &[i8]) -> f64 {
        let mut acc = self.constant;
        for t in &self.terms {
            acc += t.value_spins(spins);
        }
        acc
    }

    // --- classical solvers ------------------------------------------------

    /// Exact optimum (and pessimum) by exhaustive enumeration.
    ///
    /// Globally flip-symmetric problems fix spin 0 and enumerate half the
    /// space; either way the effective bit count must stay at or below
    /// [`Problem::EXACT_BIT_LIMIT`].
    pub fn brute_force(&self) -> Result<ExactSolution, GraphError> {
        let n = self.num_spins;
        let symmetric = self.is_flip_symmetric();
        let bits = if symmetric { n.saturating_sub(1) } else { n };
        if bits > Self::EXACT_BIT_LIMIT {
            return Err(GraphError::TooLargeForExact {
                nodes: n,
                max: Self::EXACT_BIT_LIMIT,
            });
        }
        if n == 0 {
            return Ok(ExactSolution {
                best_value: self.constant,
                best_mask: 0,
                worst_value: self.constant,
                worst_mask: 0,
                num_optima: 1,
            });
        }
        let multiplicity = if symmetric { 2 } else { 1 };
        let mut best = f64::NEG_INFINITY;
        let mut best_mask = 0u64;
        let mut num_optima = 0usize;
        let mut worst = f64::INFINITY;
        let mut worst_mask = 0u64;
        for mask in 0..(1u64 << bits) {
            let value = self.value_mask(mask);
            if value > best + 1e-12 {
                best = value;
                best_mask = mask;
                num_optima = multiplicity;
            } else if (value - best).abs() <= 1e-12 {
                num_optima += multiplicity;
            }
            if value < worst {
                worst = value;
                worst_mask = mask;
            }
        }
        Ok(ExactSolution {
            best_value: best,
            best_mask,
            worst_value: worst,
            worst_mask,
            num_optima,
        })
    }

    /// Change in `C` from flipping spin `v` (`sign = 1.0` maximizes; pass
    /// `−1.0` to reuse the same machinery for minimization).
    fn flip_gain(&self, spins: &[i8], v: usize, sign: f64) -> f64 {
        let mut gain = 0.0;
        for t in &self.terms {
            if t.qubits.contains(&v) {
                gain -= 2.0 * t.coeff * t.product_sign(spins);
            }
        }
        sign * gain
    }

    /// Greedy constructive heuristic: assign spins one at a time, choosing
    /// the side that maximizes the value of all terms that become fully
    /// assigned (the generic analog of the Max-Cut place-on-the-better-side
    /// greedy).
    pub fn greedy(&self) -> (f64, Vec<i8>) {
        let n = self.num_spins;
        let mut spins: Vec<i8> = vec![0; n];
        for v in 0..n {
            let mut gain_plus = 0.0;
            let mut gain_minus = 0.0;
            for t in &self.terms {
                if !t.qubits.contains(&v) {
                    continue;
                }
                // Only terms whose other spins are already assigned count.
                if t.qubits.iter().any(|&q| q != v && spins[q] == 0) {
                    continue;
                }
                spins[v] = 1;
                gain_plus += t.value_spins(&spins);
                spins[v] = -1;
                gain_minus += t.value_spins(&spins);
                spins[v] = 0;
            }
            spins[v] = if gain_plus >= gain_minus { 1 } else { -1 };
        }
        (self.value_spins(&spins), spins)
    }

    /// 1-flip local search from `start` (or the greedy solution when `None`):
    /// repeatedly flip the spin with the largest positive gain until no
    /// improving flip exists.
    pub fn local_search(&self, start: Option<Vec<i8>>) -> (f64, Vec<i8>) {
        self.local_search_signed(start, 1.0)
    }

    fn local_search_signed(&self, start: Option<Vec<i8>>, sign: f64) -> (f64, Vec<i8>) {
        let mut spins = start.unwrap_or_else(|| self.greedy().1);
        if spins.len() != self.num_spins {
            spins = vec![1; self.num_spins];
        }
        loop {
            let mut best_gain = 0.0;
            let mut best_node = None;
            for v in 0..self.num_spins {
                let gain = self.flip_gain(&spins, v, sign);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_node = Some(v);
                }
            }
            match best_node {
                Some(v) => spins[v] = -spins[v],
                None => break,
            }
        }
        (self.value_spins(&spins), spins)
    }

    /// Multi-start randomized 1-flip local search (the generic analog of
    /// `MaxCut::randomized_local_search`).
    pub fn randomized_local_search(&self, restarts: usize, seed: u64) -> (f64, Vec<i8>) {
        self.randomized_extreme(restarts, seed, 1.0)
    }

    fn randomized_extreme(&self, restarts: usize, seed: u64, sign: f64) -> (f64, Vec<i8>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.num_spins;
        let mut best_value = f64::NEG_INFINITY;
        let mut best_spins = vec![1i8; n];
        for _ in 0..restarts.max(1) {
            let start: Vec<i8> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect();
            let (_, spins) = self.local_search_signed(Some(start), sign);
            let value = sign * self.value_spins(&spins);
            if value > best_value {
                best_value = value;
                best_spins = spins;
            }
        }
        if best_value.is_infinite() {
            best_value = sign * self.value_spins(&best_spins);
        }
        (sign * best_value, best_spins)
    }

    /// The classical reference bracket for the approximation ratio: exact by
    /// enumeration when feasible, otherwise greedy + randomized local search
    /// (for both the best and the worst value), with the quality tagged.
    pub fn classical_solution(&self) -> ClassicalSolution {
        match self.brute_force() {
            Ok(exact) => ClassicalSolution {
                best: exact.best_value,
                worst: exact.worst_value,
                quality: SolutionQuality::Exact,
            },
            Err(_) => {
                let (greedy, _) = self.greedy();
                let (local, _) = self.randomized_local_search(20, 0xC1A55);
                // `randomized_extreme` with sign −1 minimizes and already
                // returns the (signed) minimum cost value.
                let (worst, _) = self.randomized_extreme(20, 0xC1A55, -1.0);
                ClassicalSolution {
                    best: greedy.max(local),
                    worst,
                    quality: SolutionQuality::Heuristic,
                }
            }
        }
    }

    /// The approximation ratio of `energy` against a classical bracket,
    /// following this problem's [`RatioConvention`].
    pub fn approx_ratio(&self, energy: f64, classical: &ClassicalSolution) -> f64 {
        match self.convention {
            RatioConvention::RatioToOptimum => {
                if classical.best <= 0.0 {
                    0.0
                } else {
                    energy / classical.best
                }
            }
            RatioConvention::ShiftedByWorst => {
                let span = classical.best - classical.worst;
                if span <= 0.0 {
                    0.0
                } else {
                    (energy - classical.worst) / span
                }
            }
        }
    }
}

/// The shipped problem families, mapping a dataset graph to a concrete
/// [`Problem`] instance (deterministically — the evaluator memoizes per
/// problem + graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ProblemKind {
    /// Unweighted/graph-weighted Max-Cut (the paper's driver application).
    #[default]
    MaxCut,
    /// Max-Cut with deterministic random edge weights.
    WeightedMaxCut {
        /// Seed for the per-edge weight draw.
        seed: u64,
    },
    /// Maximum Independent Set via a penalty Ising model.
    MaxIndependentSet {
        /// Edge penalty `P` (> 1 guarantees the optimum is independent).
        penalty: f64,
    },
    /// Sherrington–Kirkpatrick spin glass with random fields (uses only the
    /// graph's node count).
    SherringtonKirkpatrick {
        /// Seed for couplings and fields.
        seed: u64,
    },
    /// Random number partitioning (uses only the graph's node count).
    NumberPartitioning {
        /// Seed for the number draw.
        seed: u64,
    },
}

impl ProblemKind {
    /// Every shipped family with its default parameters seeded by `seed`
    /// (CLI listing order).
    pub fn all(seed: u64) -> Vec<ProblemKind> {
        vec![
            ProblemKind::MaxCut,
            ProblemKind::WeightedMaxCut { seed },
            ProblemKind::MaxIndependentSet { penalty: 2.0 },
            ProblemKind::SherringtonKirkpatrick { seed },
            ProblemKind::NumberPartitioning { seed },
        ]
    }

    /// Parse a CLI problem name (`maxcut`, `wmaxcut`, `mis`, `sk`,
    /// `partition`; the long synonyms `weighted-maxcut`, `independent-set`
    /// and `number-partitioning` are also accepted), seeding the stochastic
    /// families with `seed`. Equivalent to the [`FromStr`](std::str::FromStr)
    /// impl followed by [`ProblemKind::reseeded`].
    pub fn parse(spec: &str, seed: u64) -> Result<ProblemKind, ParseKindError> {
        spec.parse::<ProblemKind>().map(|kind| kind.reseeded(seed))
    }

    /// The same family with its stochastic instance seed replaced
    /// (deterministic families are returned unchanged).
    pub fn reseeded(self, seed: u64) -> ProblemKind {
        match self {
            ProblemKind::WeightedMaxCut { .. } => ProblemKind::WeightedMaxCut { seed },
            ProblemKind::SherringtonKirkpatrick { .. } => {
                ProblemKind::SherringtonKirkpatrick { seed }
            }
            ProblemKind::NumberPartitioning { .. } => ProblemKind::NumberPartitioning { seed },
            deterministic => deterministic,
        }
    }

    /// The short report name.
    pub fn name(&self) -> &'static str {
        match self {
            ProblemKind::MaxCut => "maxcut",
            ProblemKind::WeightedMaxCut { .. } => "wmaxcut",
            ProblemKind::MaxIndependentSet { .. } => "mis",
            ProblemKind::SherringtonKirkpatrick { .. } => "sk",
            ProblemKind::NumberPartitioning { .. } => "partition",
        }
    }

    /// One-line description for `qas problems`.
    pub fn description(&self) -> &'static str {
        match self {
            ProblemKind::MaxCut => "Max-Cut (paper Eq. 1): maximize the cut weight of the graph",
            ProblemKind::WeightedMaxCut { .. } => {
                "Max-Cut with deterministic random edge weights in [0.25, 1.75)"
            }
            ProblemKind::MaxIndependentSet { .. } => {
                "Maximum Independent Set as a penalty Ising model (C_best = alpha(G))"
            }
            ProblemKind::SherringtonKirkpatrick { .. } => {
                "Sherrington-Kirkpatrick spin glass with random fields (2-local Ising)"
            }
            ProblemKind::NumberPartitioning { .. } => {
                "Number partitioning: minimize the squared partition residue"
            }
        }
    }

    /// Instantiate the family for one dataset graph.
    pub fn instantiate(&self, graph: &Graph) -> Problem {
        match self {
            ProblemKind::MaxCut => Problem::max_cut(graph),
            ProblemKind::WeightedMaxCut { seed } => Problem::weighted_max_cut(graph, *seed),
            ProblemKind::MaxIndependentSet { penalty } => {
                Problem::max_independent_set(graph, *penalty)
            }
            ProblemKind::SherringtonKirkpatrick { seed } => {
                Problem::sherrington_kirkpatrick(graph, *seed)
            }
            ProblemKind::NumberPartitioning { seed } => Problem::random_partition(graph, *seed),
        }
    }
}

impl std::fmt::Display for ProblemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::str::FromStr for ProblemKind {
    type Err = ParseKindError;

    /// Parse a problem family name. Stochastic families come back with seed
    /// 0; use [`ProblemKind::reseeded`] (or [`ProblemKind::parse`]) to pick
    /// the instance seed. Round-trips with [`Display`](std::fmt::Display):
    /// `kind.to_string().parse()` returns the same family.
    fn from_str(spec: &str) -> Result<ProblemKind, ParseKindError> {
        match spec {
            "maxcut" => Ok(ProblemKind::MaxCut),
            "wmaxcut" | "weighted-maxcut" => Ok(ProblemKind::WeightedMaxCut { seed: 0 }),
            "mis" | "independent-set" => Ok(ProblemKind::MaxIndependentSet { penalty: 2.0 }),
            "sk" => Ok(ProblemKind::SherringtonKirkpatrick { seed: 0 }),
            "partition" | "number-partitioning" => Ok(ProblemKind::NumberPartitioning { seed: 0 }),
            other => Err(ParseKindError::new(
                "problem",
                other,
                "maxcut, wmaxcut, mis, sk, partition",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;

    #[test]
    fn maxcut_problem_matches_legacy_cut_values_bitwise() {
        for seed in 0..5 {
            let g = Graph::erdos_renyi(9, 0.5, seed);
            let p = Problem::max_cut(&g);
            assert_eq!(p.num_spins(), 9);
            assert_eq!(p.name(), "maxcut");
            for mask in 0..(1u64 << 9) {
                let legacy = MaxCut::cut_value_mask(&g, mask);
                let generic = p.value_mask(mask);
                assert_eq!(legacy.to_bits(), generic.to_bits(), "mask {mask}");
            }
        }
    }

    #[test]
    fn maxcut_brute_force_matches_legacy_exactly() {
        for seed in 0..5 {
            let g = Graph::erdos_renyi(10, 0.5, seed + 40);
            let p = Problem::max_cut(&g);
            let legacy = MaxCut::brute_force(&g).unwrap();
            let generic = p.brute_force().unwrap();
            assert_eq!(legacy.value.to_bits(), generic.best_value.to_bits());
            assert_eq!(legacy.assignment, generic.best_mask);
            assert_eq!(legacy.num_optima, generic.num_optima);
        }
    }

    #[test]
    fn value_spins_agrees_with_value_mask() {
        let g = Graph::erdos_renyi(7, 0.6, 3);
        for p in [
            Problem::max_cut(&g),
            Problem::weighted_max_cut(&g, 11),
            Problem::max_independent_set(&g, 2.0),
            Problem::sherrington_kirkpatrick(&g, 11),
            Problem::random_partition(&g, 11),
        ] {
            for mask in 0..(1u64 << 7) {
                let spins: Vec<i8> = (0..7)
                    .map(|i| if (mask >> i) & 1 == 1 { -1 } else { 1 })
                    .collect();
                let a = p.value_mask(mask);
                let b = p.value_spins(&spins);
                assert!(
                    (a - b).abs() < 1e-12,
                    "{}: mask {mask}: {a} vs {b}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn mis_optimum_is_the_independence_number() {
        // C5: alpha = 2; star on 7 nodes: alpha = 6; complete K4: alpha = 1.
        let cases = [
            (Graph::cycle(5), 2.0),
            (Graph::star(7), 6.0),
            (Graph::complete(4), 1.0),
        ];
        for (g, alpha) in cases {
            let p = Problem::max_independent_set(&g, 2.0);
            let exact = p.brute_force().unwrap();
            assert!(
                (exact.best_value - alpha).abs() < 1e-9,
                "{}: {} vs alpha {alpha}",
                g.num_nodes(),
                exact.best_value
            );
            // The maximizing mask is an independent set (no edge inside).
            for e in g.edges() {
                assert!(
                    (exact.best_mask >> e.u) & 1 == 0 || (exact.best_mask >> e.v) & 1 == 0,
                    "edge ({}, {}) violated",
                    e.u,
                    e.v
                );
            }
        }
    }

    #[test]
    fn partition_reaches_zero_residue_when_possible() {
        // {3, 1, 1, 1} splits into {3} vs {1,1,1}: residue 0, C_best = A^2 = 36.
        let p = Problem::number_partitioning(&[3.0, 1.0, 1.0, 1.0]).unwrap();
        let exact = p.brute_force().unwrap();
        assert!((exact.best_value - 36.0).abs() < 1e-9);
        // {2, 1} cannot balance: best residue 1, C_best = 9 - 1 = 8.
        let odd = Problem::number_partitioning(&[2.0, 1.0]).unwrap();
        assert!((odd.brute_force().unwrap().best_value - 8.0).abs() < 1e-9);
    }

    #[test]
    fn partition_value_equals_a_squared_minus_residue_squared() {
        let numbers = [5.0, 3.0, 2.0, 7.0, 1.0];
        let a: f64 = numbers.iter().sum();
        let p = Problem::number_partitioning(&numbers).unwrap();
        for mask in 0..(1u64 << numbers.len()) {
            let residue: f64 = numbers
                .iter()
                .enumerate()
                .map(|(i, &x)| if (mask >> i) & 1 == 1 { -x } else { x })
                .sum();
            let expected = a * a - residue * residue;
            assert!(
                (p.value_mask(mask) - expected).abs() < 1e-9,
                "mask {mask}: {} vs {expected}",
                p.value_mask(mask)
            );
        }
    }

    #[test]
    fn sk_brute_force_agrees_with_direct_enumeration() {
        let g = Graph::erdos_renyi(8, 0.5, 5);
        let p = Problem::sherrington_kirkpatrick(&g, 5);
        assert!(!p.is_flip_symmetric(), "fields break the flip symmetry");
        let exact = p.brute_force().unwrap();
        let mut best = f64::NEG_INFINITY;
        let mut worst = f64::INFINITY;
        for mask in 0..(1u64 << 8) {
            let v = p.value_mask(mask);
            best = best.max(v);
            worst = worst.min(v);
        }
        assert_eq!(best.to_bits(), exact.best_value.to_bits());
        assert_eq!(worst.to_bits(), exact.worst_value.to_bits());
        assert!((p.value_mask(exact.best_mask) - exact.best_value).abs() < 1e-12);
        assert!((p.value_mask(exact.worst_mask) - exact.worst_value).abs() < 1e-12);
    }

    #[test]
    fn flip_symmetry_detected_for_even_problems() {
        let g = Graph::cycle(6);
        assert!(Problem::max_cut(&g).is_flip_symmetric());
        assert!(Problem::random_partition(&g, 1).is_flip_symmetric());
        assert!(!Problem::max_independent_set(&g, 2.0).is_flip_symmetric());
    }

    #[test]
    fn from_terms_validates_indices_and_duplicates() {
        assert!(matches!(
            Problem::from_terms(
                "bad",
                2,
                0.0,
                vec![CostTerm::new(vec![0, 5], 1.0)],
                RatioConvention::RatioToOptimum
            ),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            Problem::from_terms(
                "bad",
                3,
                0.0,
                vec![CostTerm::new(vec![1, 1], 1.0)],
                RatioConvention::RatioToOptimum
            ),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn brute_force_rejects_oversized_problems() {
        let g = Graph::empty(40);
        let p = Problem::max_independent_set(&g, 2.0);
        // Degree-0 nodes still carry a −½·z_i field term, so this is not
        // flip-symmetric: 40 effective bits, well over the limit.
        assert!(!p.is_flip_symmetric());
        assert!(matches!(
            p.brute_force(),
            Err(GraphError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn heuristics_never_exceed_the_exact_optimum() {
        for seed in 0..6 {
            let g = Graph::erdos_renyi(9, 0.5, seed + 70);
            for p in [
                Problem::max_cut(&g),
                Problem::weighted_max_cut(&g, seed),
                Problem::max_independent_set(&g, 2.0),
                Problem::sherrington_kirkpatrick(&g, seed),
                Problem::random_partition(&g, seed),
            ] {
                let exact = p.brute_force().unwrap();
                let (greedy, _) = p.greedy();
                let (local, _) = p.randomized_local_search(10, seed);
                assert!(greedy <= exact.best_value + 1e-9, "{} greedy", p.name());
                assert!(local <= exact.best_value + 1e-9, "{} local", p.name());
                assert!(local + 1e-9 >= greedy.min(exact.best_value), "{}", p.name());
            }
        }
    }

    #[test]
    fn randomized_local_search_finds_the_optimum_on_small_instances() {
        for seed in 0..4 {
            let g = Graph::erdos_renyi(7, 0.5, seed + 20);
            let p = Problem::sherrington_kirkpatrick(&g, seed);
            let exact = p.brute_force().unwrap();
            let (found, _) = p.randomized_local_search(40, seed);
            assert!(
                (found - exact.best_value).abs() < 1e-9,
                "seed {seed}: {found} vs {}",
                exact.best_value
            );
        }
    }

    #[test]
    fn classical_solution_tags_exact_and_heuristic() {
        let small = Problem::max_cut(&Graph::cycle(6));
        let sol = small.classical_solution();
        assert_eq!(sol.quality, SolutionQuality::Exact);
        assert_eq!(sol.best, 6.0);
        assert_eq!(sol.worst, 0.0);

        let big = Problem::max_cut(&Graph::erdos_renyi(30, 0.2, 1));
        let sol = big.classical_solution();
        assert_eq!(sol.quality, SolutionQuality::Heuristic);
        assert!(sol.best > 0.0);
        assert!(sol.worst <= sol.best);
        // The heuristic bracket contains an arbitrary assignment's value.
        let probe = big.value_mask(0b1010_1010_1010);
        assert!(sol.worst <= probe + 1e-9 && probe <= sol.best + 1e-9);

        // A heuristic SK bracket must straddle zero (random couplings have a
        // strictly negative minimum) and contain arbitrary probes — this is
        // the case that catches a sign error in the minimizing search.
        let sk = Problem::sherrington_kirkpatrick(&Graph::empty(30), 4);
        let sol = sk.classical_solution();
        assert_eq!(sol.quality, SolutionQuality::Heuristic);
        assert!(
            sol.worst < 0.0,
            "SK minimum must be negative, got {}",
            sol.worst
        );
        assert!(
            sol.best > 0.0,
            "SK maximum must be positive, got {}",
            sol.best
        );
        for probe_mask in [0u64, 0x2AAA_AAAA, 0x3FFF_FFFF, 0x1234_5678] {
            let v = sk.value_mask(probe_mask);
            assert!(
                sol.worst <= v + 1e-9 && v <= sol.best + 1e-9,
                "probe {v} outside heuristic bracket [{}, {}]",
                sol.worst,
                sol.best
            );
        }
    }

    #[test]
    fn approx_ratio_follows_the_convention() {
        let g = Graph::cycle(4);
        let mc = Problem::max_cut(&g);
        let sol = mc.classical_solution();
        assert_eq!(mc.approx_ratio(2.0, &sol), 0.5);
        assert_eq!(mc.approx_ratio(4.0, &sol), 1.0);

        let sk = Problem::sherrington_kirkpatrick(&g, 3);
        let sol = sk.classical_solution();
        assert_eq!(sk.convention(), RatioConvention::ShiftedByWorst);
        assert!((sk.approx_ratio(sol.best, &sol) - 1.0).abs() < 1e-12);
        assert!(sk.approx_ratio(sol.worst, &sol).abs() < 1e-12);

        // Degenerate bracket ⇒ ratio 0, never a NaN.
        let flat = ClassicalSolution {
            best: 0.0,
            worst: 0.0,
            quality: SolutionQuality::Exact,
        };
        assert_eq!(mc.approx_ratio(1.0, &flat), 0.0);
        assert_eq!(sk.approx_ratio(1.0, &flat), 0.0);
    }

    #[test]
    fn problem_kind_round_trips_names() {
        for kind in ProblemKind::all(9) {
            let parsed = ProblemKind::parse(kind.name(), 9).unwrap();
            assert_eq!(parsed, kind);
            assert!(!kind.description().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!(ProblemKind::parse("nope", 0).is_err());
    }

    #[test]
    fn problem_kind_from_str_round_trips_exhaustively() {
        // Display → FromStr → reseeded reproduces every shipped family.
        for kind in ProblemKind::all(23) {
            let parsed: ProblemKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed.name(), kind.name());
            assert_eq!(parsed.reseeded(23), kind);
        }
        // Long synonyms parse to the same families.
        for (long, short) in [
            ("weighted-maxcut", "wmaxcut"),
            ("independent-set", "mis"),
            ("number-partitioning", "partition"),
        ] {
            assert_eq!(long.parse::<ProblemKind>().unwrap().name(), short);
        }
        let err = "qubo".parse::<ProblemKind>().unwrap_err();
        assert_eq!(err.what, "problem");
        assert!(err.to_string().contains("maxcut"), "{err}");
    }

    #[test]
    fn reseeding_only_touches_stochastic_families() {
        assert_eq!(ProblemKind::MaxCut.reseeded(99), ProblemKind::MaxCut);
        assert_eq!(
            ProblemKind::MaxIndependentSet { penalty: 2.0 }.reseeded(99),
            ProblemKind::MaxIndependentSet { penalty: 2.0 }
        );
        assert_eq!(
            ProblemKind::SherringtonKirkpatrick { seed: 1 }.reseeded(99),
            ProblemKind::SherringtonKirkpatrick { seed: 99 }
        );
    }

    #[test]
    fn problem_kind_instantiation_is_deterministic() {
        let g = Graph::erdos_renyi(8, 0.5, 2);
        for kind in ProblemKind::all(31) {
            let a = kind.instantiate(&g);
            let b = kind.instantiate(&g);
            assert_eq!(a, b, "{}", kind.name());
            assert_eq!(a.name(), kind.name());
            assert_eq!(a.num_spins(), 8);
            assert!(a.max_locality() <= 2);
        }
    }

    #[test]
    fn weighted_maxcut_weights_depend_on_seed() {
        let g = Graph::cycle(6);
        let a = Problem::weighted_max_cut(&g, 1);
        let b = Problem::weighted_max_cut(&g, 2);
        assert_ne!(a, b);
        // Weights stay within the documented band.
        for t in a.terms() {
            let w = -2.0 * t.coeff();
            assert!((0.25..1.75).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_evaluation() {
        let g = Graph::cycle(5);
        let p = Problem::max_independent_set(&g, 2.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Problem = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        for mask in 0..(1u64 << 5) {
            assert_eq!(
                p.value_mask(mask).to_bits(),
                back.value_mask(mask).to_bits()
            );
        }
    }
}
