//! Simple undirected weighted graphs.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An undirected weighted edge `(u, v, w)` with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight (1.0 for unweighted instances).
    pub weight: f64,
}

impl Edge {
    /// Normalized edge with `u < v`.
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        if a <= b {
            Edge { u: a, v: b, weight }
        } else {
            Edge { u: b, v: a, weight }
        }
    }
}

/// A label describing how a graph was produced; carried along for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphKind {
    /// Erdős–Rényi G(n, p).
    ErdosRenyi,
    /// Random d-regular.
    RandomRegular,
    /// Cycle graph.
    Cycle,
    /// Complete graph.
    Complete,
    /// Star graph.
    Star,
    /// Anything constructed manually.
    Custom,
}

impl fmt::Display for GraphKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GraphKind::ErdosRenyi => "erdos-renyi",
            GraphKind::RandomRegular => "random-regular",
            GraphKind::Cycle => "cycle",
            GraphKind::Complete => "complete",
            GraphKind::Star => "star",
            GraphKind::Custom => "custom",
        };
        write!(f, "{s}")
    }
}

/// An undirected weighted graph stored as a deduplicated edge list plus
/// adjacency lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<(usize, f64)>>,
    kind: GraphKind,
}

impl Graph {
    /// An empty graph on `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_nodes],
            kind: GraphKind::Custom,
        }
    }

    /// Build a graph from an unweighted edge list.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let weighted: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_weighted_edges(num_nodes, &weighted)
    }

    /// Build a graph from a weighted edge list. Parallel edges collapse into
    /// one edge whose weight is the sum.
    pub fn from_weighted_edges(
        num_nodes: usize,
        edges: &[(usize, usize, f64)],
    ) -> Result<Self, GraphError> {
        let mut g = Graph::empty(num_nodes);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Add (or merge) an edge.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<(), GraphError> {
        if u >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                index: u,
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                index: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let edge = Edge::new(u, v, weight);
        if let Some(existing) = self
            .edges
            .iter_mut()
            .find(|e| e.u == edge.u && e.v == edge.v)
        {
            existing.weight += weight;
            for &(a, b) in &[(edge.u, edge.v), (edge.v, edge.u)] {
                if let Some(entry) = self.adjacency[a].iter_mut().find(|(n, _)| *n == b) {
                    entry.1 += weight;
                }
            }
        } else {
            self.edges.push(edge);
            self.adjacency[edge.u].push((edge.v, weight));
            self.adjacency[edge.v].push((edge.u, weight));
        }
        Ok(())
    }

    /// Mark the generator kind (builder-style).
    pub fn with_kind(mut self, kind: GraphKind) -> Self {
        self.kind = kind;
        self
    }

    /// The generator kind.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (each edge once, `u < v`).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `node` with edge weights.
    pub fn neighbors(&self, node: usize) -> &[(usize, f64)] {
        &self.adjacency[node]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency[node].len()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Whether the graph is `d`-regular.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.num_nodes).all(|v| self.degree(v) == d)
    }

    /// Whether an edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let e = Edge::new(u, v, 0.0);
        self.edges.iter().any(|x| x.u == e.u && x.v == e.v)
    }

    /// Whether the graph is connected (an empty or single-node graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.num_nodes
    }

    /// Edge density: `|E| / (n choose 2)`.
    pub fn density(&self) -> f64 {
        if self.num_nodes < 2 {
            return 0.0;
        }
        let max_edges = self.num_nodes * (self.num_nodes - 1) / 2;
        self.num_edges() as f64 / max_edges as f64
    }

    /// The subgraph induced by `nodes`, with nodes relabelled to `0..k` in the
    /// order given. Returns the relabelling as well.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let keep: BTreeSet<usize> = nodes.iter().copied().collect();
        let ordered: Vec<usize> = nodes.to_vec();
        let index_of = |v: usize| ordered.iter().position(|&x| x == v);
        let mut g = Graph::empty(ordered.len());
        for e in &self.edges {
            if keep.contains(&e.u) && keep.contains(&e.v) {
                let iu = index_of(e.u).expect("node in keep set");
                let iv = index_of(e.v).expect("node in keep set");
                g.add_edge(iu, iv, e.weight).expect("valid subgraph edge");
            }
        }
        (g, ordered)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} graph: {} nodes, {} edges, density {:.3}",
            self.kind,
            self.num_nodes,
            self.num_edges(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_validates() {
        let mut g = Graph::empty(3);
        assert!(g.add_edge(0, 1, 1.0).is_ok());
        assert_eq!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange {
                index: 5,
                num_nodes: 3
            })
        );
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn parallel_edges_merge_weights() {
        let mut g = Graph::empty(2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 2.5).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.edges()[0].weight - 3.5).abs() < 1e-12);
        assert!((g.neighbors(0)[0].1 - 3.5).abs() < 1e-12);
        assert!((g.neighbors(1)[0].1 - 3.5).abs() < 1e-12);
    }

    #[test]
    fn degrees_and_density() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert!((g.density() - 4.0 / 6.0).abs() < 1e-12);
        assert!(g.is_regular(2));
        assert!(!g.is_regular(3));
    }

    #[test]
    fn connectivity() {
        let connected = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(connected.is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
        assert!(!Graph::empty(2).is_connected());
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = Graph::from_edges(3, &[(0, 2)]).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, order) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // (1,2) in original
        assert!(sub.has_edge(1, 2)); // (2,3) in original
    }

    #[test]
    fn total_weight_sums_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 2.0)]).unwrap();
        assert!((g.total_weight() - 2.5).abs() < 1e-12);
    }
}
