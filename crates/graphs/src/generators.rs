//! Random and deterministic graph generators.
//!
//! The paper's two datasets are Erdős–Rényi and random 4-regular graphs on 10
//! nodes. Generation is fully seeded (ChaCha8) so every experiment harness run
//! sees the same instances.

use crate::error::GraphError;
use crate::graph::{Graph, GraphKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

impl Graph {
    /// Erdős–Rényi `G(n, p)` with a fixed seed.
    ///
    /// Each of the `n·(n-1)/2` possible edges is present independently with
    /// probability `p` (clamped into `[0, 1]`).
    pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
        let p = p.clamp(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = Graph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    g.add_edge(u, v, 1.0).expect("generated edge is valid");
                }
            }
        }
        g.with_kind(GraphKind::ErdosRenyi)
    }

    /// Erdős–Rényi `G(n, p)` that is retried until connected (up to
    /// `max_attempts`); falls back to the last sample when none is connected.
    ///
    /// The paper's profiling dataset uses "varying degrees of connectivity";
    /// for the quality experiments connected instances avoid degenerate cuts.
    pub fn connected_erdos_renyi(n: usize, p: f64, seed: u64, max_attempts: usize) -> Graph {
        let mut last = Graph::erdos_renyi(n, p, seed);
        for attempt in 0..max_attempts {
            if last.is_connected() {
                return last;
            }
            last = Graph::erdos_renyi(n, p, seed.wrapping_add(1 + attempt as u64));
        }
        last
    }

    /// Random `d`-regular graph via the configuration (pairing) model with
    /// rejection of self-loops and parallel edges.
    ///
    /// Requires `n·d` even and `d < n`. Retries the pairing until a simple
    /// graph is produced or the attempt budget is exhausted.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
        if d >= n || !(n * d).is_multiple_of(2) {
            return Err(GraphError::InfeasibleRegularGraph {
                nodes: n,
                degree: d,
            });
        }
        if d == 0 {
            return Ok(Graph::empty(n).with_kind(GraphKind::RandomRegular));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        const MAX_ATTEMPTS: usize = 2000;
        for _ in 0..MAX_ATTEMPTS {
            if let Some(g) = try_configuration_model(n, d, &mut rng) {
                return Ok(g.with_kind(GraphKind::RandomRegular));
            }
        }
        Err(GraphError::RegularGenerationFailed {
            attempts: MAX_ATTEMPTS,
        })
    }

    /// The cycle graph `C_n`.
    pub fn cycle(n: usize) -> Graph {
        let mut g = Graph::empty(n);
        if n >= 3 {
            for v in 0..n {
                g.add_edge(v, (v + 1) % n, 1.0).expect("cycle edge valid");
            }
        } else if n == 2 {
            g.add_edge(0, 1, 1.0).expect("cycle edge valid");
        }
        g.with_kind(GraphKind::Cycle)
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Graph {
        let mut g = Graph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, 1.0).expect("complete edge valid");
            }
        }
        g.with_kind(GraphKind::Complete)
    }

    /// The star graph with `n` nodes (node 0 is the center).
    pub fn star(n: usize) -> Graph {
        let mut g = Graph::empty(n);
        for v in 1..n {
            g.add_edge(0, v, 1.0).expect("star edge valid");
        }
        g.with_kind(GraphKind::Star)
    }
}

/// One attempt of the configuration model: create `d` stubs per node, shuffle,
/// pair consecutive stubs, reject if any self-loop or duplicate edge appears.
fn try_configuration_model(n: usize, d: usize, rng: &mut ChaCha8Rng) -> Option<Graph> {
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut g = Graph::empty(n);
    for pair in stubs.chunks(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v || g.has_edge(u, v) {
            return None;
        }
        g.add_edge(u, v, 1.0).expect("validated edge");
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_seeded_deterministic() {
        let a = Graph::erdos_renyi(10, 0.5, 123);
        let b = Graph::erdos_renyi(10, 0.5, 123);
        assert_eq!(a, b);
        let c = Graph::erdos_renyi(10, 0.5, 124);
        // Different seeds almost surely differ for n=10, p=0.5.
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = Graph::erdos_renyi(8, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = Graph::erdos_renyi(8, 1.0, 1);
        assert_eq!(full.num_edges(), 8 * 7 / 2);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        // With n=30 and p=0.3 the density should be near 0.3.
        let g = Graph::erdos_renyi(30, 0.3, 7);
        assert!(
            (g.density() - 0.3).abs() < 0.12,
            "density {} too far from p",
            g.density()
        );
    }

    #[test]
    fn random_regular_has_correct_degrees() {
        for seed in 0..5 {
            let g = Graph::random_regular(10, 4, seed).unwrap();
            assert!(
                g.is_regular(4),
                "seed {seed} produced a non-4-regular graph"
            );
            assert_eq!(g.num_edges(), 10 * 4 / 2);
        }
    }

    #[test]
    fn random_regular_rejects_infeasible() {
        assert!(matches!(
            Graph::random_regular(5, 3, 0),
            Err(GraphError::InfeasibleRegularGraph { .. })
        ));
        assert!(matches!(
            Graph::random_regular(4, 4, 0),
            Err(GraphError::InfeasibleRegularGraph { .. })
        ));
    }

    #[test]
    fn random_regular_zero_degree() {
        let g = Graph::random_regular(6, 0, 3).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn connected_erdos_renyi_usually_connected() {
        let g = Graph::connected_erdos_renyi(10, 0.4, 99, 50);
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_complete_star_shapes() {
        let c = Graph::cycle(6);
        assert!(c.is_regular(2));
        assert_eq!(c.num_edges(), 6);

        let k = Graph::complete(5);
        assert!(k.is_regular(4));
        assert_eq!(k.num_edges(), 10);

        let s = Graph::star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(1), 1);
        assert_eq!(s.num_edges(), 4);
    }

    #[test]
    fn small_cycles() {
        assert_eq!(Graph::cycle(0).num_edges(), 0);
        assert_eq!(Graph::cycle(1).num_edges(), 0);
        assert_eq!(Graph::cycle(2).num_edges(), 1);
        assert_eq!(Graph::cycle(3).num_edges(), 3);
    }
}
