//! Uniform grid search within a box around the start point.
//!
//! The grid is laid out once from the run's total budget (the `budget_hint`
//! of [`Resumable::start`]) and walked cursor-by-cursor, so a paused run
//! [resumes](crate::Resumable) at the exact next grid point.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::resumable::{BatchProposal, OptimizerState, Resumable};
use crate::Optimizer;

/// Evaluate the objective on a uniform grid in `initial ± half_width` and
/// return the best grid point. The number of points per dimension is chosen
/// to (approximately) fill the evaluation budget.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Half-width of the search box along every coordinate.
    pub half_width: f64,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch {
            half_width: std::f64::consts::PI,
        }
    }
}

/// Checkpointed state of a grid-search run (see [`Resumable`]).
#[derive(Debug, Clone)]
pub struct GridState {
    pub(crate) initial: Vec<f64>,
    pub(crate) points_per_dim: usize,
    /// Total grid points this run will visit.
    pub(crate) total: usize,
    pub(crate) cursor: usize,
    pub(crate) best_point: Vec<f64>,
    pub(crate) best_value: f64,
    pub(crate) converged: bool,
    pub(crate) trace: OptimizationTrace,
}

impl GridState {
    pub(crate) fn snapshot(&self) -> OptimizationResult {
        OptimizationResult::from_trace(
            self.best_point.clone(),
            self.best_value,
            self.converged,
            self.trace.clone(),
        )
    }
}

impl Resumable for GridSearch {
    fn start(&self, initial: &[f64], budget_hint: usize) -> OptimizerState {
        let n = initial.len();
        let budget = budget_hint.max(1);
        let (points_per_dim, total) = if n == 0 {
            (0, 1)
        } else {
            // points_per_dim^n <= budget, at least 2 per dimension.
            let mut points_per_dim = (budget as f64).powf(1.0 / n as f64).floor() as usize;
            points_per_dim = points_per_dim.max(2);
            while points_per_dim > 2 && points_per_dim.pow(n as u32) > budget {
                points_per_dim -= 1;
            }
            (points_per_dim, points_per_dim.pow(n as u32).min(budget))
        };
        OptimizerState::GridSearch(GridState {
            initial: initial.to_vec(),
            points_per_dim,
            total,
            cursor: 0,
            best_point: initial.to_vec(),
            best_value: f64::INFINITY,
            converged: false,
            trace: OptimizationTrace::new(),
        })
    }

    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        let OptimizerState::GridSearch(s) = state else {
            panic!(
                "GridSearch::resume_until given a {} state",
                state.kind_name()
            );
        };
        let n = s.initial.len();
        if n == 0 {
            if s.cursor == 0 && target_evaluations > 0 {
                let v = objective(&s.initial);
                s.trace.record(v);
                s.best_value = v;
                s.cursor = 1;
                s.converged = true;
            }
            return s.snapshot();
        }
        while s.cursor < s.total && s.trace.len() < target_evaluations {
            // Decode the cursor into per-dimension grid coordinates.
            let mut rest = s.cursor;
            let mut point = Vec::with_capacity(n);
            for &x0 in &s.initial {
                let idx = rest % s.points_per_dim;
                rest /= s.points_per_dim;
                let frac = idx as f64 / (s.points_per_dim - 1) as f64; // in [0, 1]
                point.push(x0 - self.half_width + 2.0 * self.half_width * frac);
            }
            let value = objective(&point);
            s.trace.record(value);
            if value < s.best_value {
                s.best_value = value;
                s.best_point = point;
            }
            s.cursor += 1;
        }
        if s.cursor >= s.total {
            s.converged = true;
        }
        s.snapshot()
    }

    /// Grid search's probe set is the grid itself: every remaining point up
    /// to the target, decoded from consecutive cursor values exactly as the
    /// scalar loop decodes them.
    fn propose_batch(
        &self,
        state: &mut OptimizerState,
        target_evaluations: usize,
    ) -> BatchProposal {
        let OptimizerState::GridSearch(s) = state else {
            panic!(
                "GridSearch::propose_batch given a {} state",
                state.kind_name()
            );
        };
        let n = s.initial.len();
        if n == 0 {
            return BatchProposal::Scalar;
        }
        if s.cursor >= s.total || s.trace.len() >= target_evaluations {
            // Mirror the scalar post-loop check: a fully walked grid flips
            // to converged even when this call evaluates nothing.
            if s.cursor >= s.total {
                s.converged = true;
            }
            return BatchProposal::Exhausted;
        }
        let count = (s.total - s.cursor).min(target_evaluations - s.trace.len());
        let mut points = Vec::with_capacity(count);
        for cursor in s.cursor..s.cursor + count {
            let mut rest = cursor;
            let mut point = Vec::with_capacity(n);
            for &x0 in &s.initial {
                let idx = rest % s.points_per_dim;
                rest /= s.points_per_dim;
                let frac = idx as f64 / (s.points_per_dim - 1) as f64; // in [0, 1]
                point.push(x0 - self.half_width + 2.0 * self.half_width * frac);
            }
            points.push(point);
        }
        BatchProposal::Points(points)
    }

    fn observe_batch(&self, state: &mut OptimizerState, points: &[Vec<f64>], values: &[f64]) {
        let OptimizerState::GridSearch(s) = state else {
            panic!(
                "GridSearch::observe_batch given a {} state",
                state.kind_name()
            );
        };
        for (point, &value) in points.iter().zip(values) {
            s.trace.record(value);
            if value < s.best_value {
                s.best_value = value;
                s.best_point = point.clone();
            }
            s.cursor += 1;
        }
        if s.cursor >= s.total {
            s.converged = true;
        }
    }
}

impl Optimizer for GridSearch {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let mut state = self.start(initial, max_evaluations);
        self.resume_until(&mut state, objective, max_evaluations.max(1))
    }

    fn name(&self) -> &'static str {
        "grid-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_box_in_1d() {
        let gs = GridSearch { half_width: 1.0 };
        let r = gs.minimize(&|x| (x[0] - 1.0).powi(2), &[0.0], 21);
        // The grid includes the right edge x = 1.0 exactly.
        assert!(r.best_value < 1e-12);
    }

    #[test]
    fn respects_budget_in_2d() {
        let gs = GridSearch::default();
        let r = gs.minimize(&|x| x[0] + x[1], &[0.0, 0.0], 50);
        assert!(r.evaluations <= 50);
        assert!(r.evaluations >= 4); // at least 2 per dimension
    }

    #[test]
    fn zero_dimensional_input() {
        let gs = GridSearch::default();
        let r = gs.minimize(&|_| 1.0, &[], 5);
        assert_eq!(r.best_value, 1.0);
    }

    #[test]
    fn finds_center_minimum() {
        let gs = GridSearch { half_width: 2.0 };
        let r = gs.minimize(&|x| x[0] * x[0] + x[1] * x[1], &[0.0, 0.0], 81);
        assert!(r.best_value < 1e-12);
    }
}
