//! Uniform grid search within a box around the start point.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::Optimizer;

/// Evaluate the objective on a uniform grid in `initial ± half_width` and
/// return the best grid point. The number of points per dimension is chosen
/// to (approximately) fill the evaluation budget.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Half-width of the search box along every coordinate.
    pub half_width: f64,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch {
            half_width: std::f64::consts::PI,
        }
    }
}

impl Optimizer for GridSearch {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let n = initial.len();
        let budget = max_evaluations.max(1);
        let mut trace = OptimizationTrace::new();

        if n == 0 {
            let v = objective(initial);
            trace.record(v);
            return OptimizationResult::from_trace(initial.to_vec(), v, true, trace);
        }

        // points_per_dim^n <= budget, at least 2 per dimension.
        let mut points_per_dim = (budget as f64).powf(1.0 / n as f64).floor() as usize;
        points_per_dim = points_per_dim.max(2);
        while points_per_dim > 2 && points_per_dim.pow(n as u32) > budget {
            points_per_dim -= 1;
        }

        let mut best_point = initial.to_vec();
        let mut best_value = f64::INFINITY;

        let total = points_per_dim.pow(n as u32).min(budget);
        for flat in 0..total {
            // Decode the flat index into per-dimension grid coordinates.
            let mut rest = flat;
            let mut point = Vec::with_capacity(n);
            for &x0 in initial {
                let idx = rest % points_per_dim;
                rest /= points_per_dim;
                let frac = idx as f64 / (points_per_dim - 1) as f64; // in [0, 1]
                point.push(x0 - self.half_width + 2.0 * self.half_width * frac);
            }
            let value = objective(&point);
            trace.record(value);
            if value < best_value {
                best_value = value;
                best_point = point;
            }
        }
        OptimizationResult::from_trace(best_point, best_value, true, trace)
    }

    fn name(&self) -> &'static str {
        "grid-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_box_in_1d() {
        let gs = GridSearch { half_width: 1.0 };
        let r = gs.minimize(&|x| (x[0] - 1.0).powi(2), &[0.0], 21);
        // The grid includes the right edge x = 1.0 exactly.
        assert!(r.best_value < 1e-12);
    }

    #[test]
    fn respects_budget_in_2d() {
        let gs = GridSearch::default();
        let r = gs.minimize(&|x| x[0] + x[1], &[0.0, 0.0], 50);
        assert!(r.evaluations <= 50);
        assert!(r.evaluations >= 4); // at least 2 per dimension
    }

    #[test]
    fn zero_dimensional_input() {
        let gs = GridSearch::default();
        let r = gs.minimize(&|_| 1.0, &[], 5);
        assert_eq!(r.best_value, 1.0);
    }

    #[test]
    fn finds_center_minimum() {
        let gs = GridSearch { half_width: 2.0 };
        let r = gs.minimize(&|x| x[0] * x[0] + x[1] * x[1], &[0.0, 0.0], 81);
        assert!(r.best_value < 1e-12);
    }
}
