//! Shared analytic test functions for optimizer tests.

/// Sphere function: global minimum 0 at the origin.
pub fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// 2-D Rosenbrock function: global minimum 0 at (1, 1).
pub fn rosenbrock(x: &[f64]) -> f64 {
    (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
}

/// A QAOA-like periodic landscape with global minimum -1.5 at the origin.
pub fn periodic(x: &[f64]) -> f64 {
    -(x[0].cos() + 0.5 * x.iter().skip(1).map(|v| v.cos()).product::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CobylaOptimizer, NelderMead, Optimizer, OptimizerKind, RandomSearch, Spsa};

    #[test]
    fn analytic_minima() {
        assert_eq!(sphere(&[0.0, 0.0]), 0.0);
        assert_eq!(rosenbrock(&[1.0, 1.0]), 0.0);
        assert!((periodic(&[0.0, 0.0]) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn every_optimizer_beats_random_start_on_sphere() {
        let start = [1.5, -1.5];
        let start_value = sphere(&start);
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(CobylaOptimizer::default()),
            Box::new(NelderMead::default()),
            Box::new(Spsa::default()),
            Box::new(RandomSearch::default()),
        ];
        for opt in optimizers {
            let r = opt.minimize(&sphere, &start, 400);
            assert!(
                r.best_value < start_value,
                "{} failed to improve: {} vs start {}",
                opt.name(),
                r.best_value,
                start_value
            );
        }
    }

    #[test]
    fn kind_builds_every_optimizer() {
        for kind in OptimizerKind::all() {
            let opt = kind.build();
            let r = opt.minimize(&sphere, &[0.5], 30);
            assert!(r.best_value.is_finite());
            assert!(!opt.name().is_empty());
        }
    }

    #[test]
    fn kind_display_names_are_unique() {
        let names: Vec<String> = OptimizerKind::all().iter().map(|k| k.to_string()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
