//! A COBYLA-style linear-approximation trust-region minimizer.
//!
//! Powell's COBYLA (Constrained Optimization BY Linear Approximations)
//! maintains a simplex of `n + 1` points, fits a linear model of the
//! objective over that simplex, and minimizes the model inside a trust
//! region whose radius shrinks as the optimization progresses. QArchSearch
//! uses SciPy's COBYLA with a 200-iteration budget to train each candidate
//! circuit; the reproduction only needs the unconstrained variant (QAOA
//! angles are periodic, so box constraints are unnecessary), which is what
//! this implementation provides.
//!
//! The implementation follows the classical structure:
//!
//! 1. build an initial simplex around the start point with edge length
//!    `rho_begin`,
//! 2. fit the linear interpolant through the simplex vertices (solved here by
//!    Gaussian elimination on the simplex edge matrix),
//! 3. step from the best vertex along the negated model gradient, clipped to
//!    the trust-region radius,
//! 4. replace the worst vertex when the step improves the objective,
//!    otherwise shrink the trust region, and
//! 5. stop when the radius reaches `rho_end` or the evaluation budget is
//!    exhausted.
//!
//! The run is organized as a sequence of **atomic steps** (simplex
//! initialization, one trust-region iteration, one degenerate-simplex
//! rebuild) over an explicit [`CobylaState`], which is what makes the
//! optimizer [`Resumable`]: a paused run continues exactly where it stopped.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::resumable::{OptimizerState, Resumable};
use crate::Optimizer;

/// COBYLA-style linear trust-region optimizer.
#[derive(Debug, Clone)]
pub struct CobylaOptimizer {
    /// Initial trust-region radius (also the initial simplex edge length).
    pub rho_begin: f64,
    /// Final trust-region radius; reaching it counts as convergence.
    pub rho_end: f64,
    /// Trust-region shrink factor applied when a step fails to improve.
    pub shrink: f64,
}

impl Default for CobylaOptimizer {
    fn default() -> Self {
        CobylaOptimizer {
            rho_begin: 0.5,
            rho_end: 1e-6,
            shrink: 0.5,
        }
    }
}

impl CobylaOptimizer {
    /// Optimizer with explicit initial/final trust-region radii.
    pub fn new(rho_begin: f64, rho_end: f64) -> Self {
        CobylaOptimizer {
            rho_begin,
            rho_end,
            shrink: 0.5,
        }
    }
}

/// Checkpointed state of a COBYLA run (see [`Resumable`]).
#[derive(Debug, Clone)]
pub struct CobylaState {
    pub(crate) initial: Vec<f64>,
    pub(crate) vertices: Vec<Vec<f64>>,
    pub(crate) values: Vec<f64>,
    pub(crate) rho: f64,
    pub(crate) converged: bool,
    pub(crate) trace: OptimizationTrace,
}

impl CobylaState {
    fn best_index(&self) -> usize {
        self.values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    pub(crate) fn snapshot(&self) -> OptimizationResult {
        if self.values.is_empty() {
            return OptimizationResult::from_trace(
                self.initial.clone(),
                f64::INFINITY,
                self.converged,
                self.trace.clone(),
            );
        }
        let bi = self.best_index();
        OptimizationResult::from_trace(
            self.vertices[bi].clone(),
            self.values[bi],
            self.converged,
            self.trace.clone(),
        )
    }
}

/// Solve the linear system `A x = b` with partial pivoting. Returns `None`
/// for (numerically) singular systems.
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Elimination.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            let (pivot_row, this_row) = (&upper[col], &mut lower[0]);
            for (x, p) in this_row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

impl CobylaOptimizer {
    /// One atomic step: simplex init, a degenerate rebuild, or a full
    /// trust-region iteration. Runs to completion regardless of the budget
    /// (the caller only decides whether to *begin* a step).
    fn step(&self, s: &mut CobylaState, objective: &(dyn Fn(&[f64]) -> f64 + Sync)) {
        let n = s.initial.len();
        let eval = |x: &[f64], trace: &mut OptimizationTrace| {
            let v = objective(x);
            trace.record(v);
            v
        };

        if n == 0 {
            let v = eval(&s.initial, &mut s.trace);
            s.vertices.push(s.initial.clone());
            s.values.push(v);
            s.converged = true;
            return;
        }

        // Initialization: the whole simplex is one atomic step.
        if s.vertices.len() < n + 1 {
            if s.vertices.is_empty() {
                let v = eval(&s.initial.clone(), &mut s.trace);
                s.vertices.push(s.initial.clone());
                s.values.push(v);
            }
            for i in s.vertices.len() - 1..n {
                let mut x = s.initial.clone();
                x[i] += self.rho_begin;
                let v = eval(&x, &mut s.trace);
                s.vertices.push(x);
                s.values.push(v);
            }
            return;
        }

        if s.rho <= self.rho_end {
            s.converged = true;
            return;
        }

        let bi = s.best_index();
        let best_point = s.vertices[bi].clone();
        let best_value = s.values[bi];

        // Linear model: f(x) ≈ f(x_best) + g·(x - x_best), where g solves
        // the interpolation conditions on the other n vertices.
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut b: Vec<f64> = Vec::with_capacity(n);
        for (j, (vertex, &value)) in s.vertices.iter().zip(s.values.iter()).enumerate() {
            if j == bi {
                continue;
            }
            let row: Vec<f64> = vertex.iter().zip(&best_point).map(|(x, y)| x - y).collect();
            a.push(row);
            b.push(value - best_value);
        }

        let gradient = match solve_linear(&mut a, &mut b) {
            Some(g) => g,
            None => {
                // Degenerate simplex: rebuild it around the best point with
                // the current radius (one atomic step).
                for i in 0..n {
                    let mut x = best_point.clone();
                    x[i] += s.rho;
                    let v = eval(&x, &mut s.trace);
                    let target = if i < bi { i } else { i + 1 };
                    s.vertices[target] = x;
                    s.values[target] = v;
                }
                return;
            }
        };

        let grad_norm = gradient.iter().map(|g| g * g).sum::<f64>().sqrt();
        if grad_norm < 1e-14 {
            // Flat model: shrink and retry (costs no evaluations; the rho
            // decay reaches rho_end after finitely many steps).
            s.rho *= self.shrink;
            return;
        }

        // Candidate step: steepest descent on the model, trust-region length.
        let candidate: Vec<f64> = best_point
            .iter()
            .zip(&gradient)
            .map(|(x, g)| x - s.rho * g / grad_norm)
            .collect();
        let candidate_value = eval(&candidate, &mut s.trace);

        if candidate_value < best_value - 1e-14 {
            // Accept: replace the worst vertex.
            let wi = s
                .values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            s.vertices[wi] = candidate;
            s.values[wi] = candidate_value;
        } else {
            // Reject: shrink the trust region and refresh the simplex
            // around the best point at the new scale.
            s.rho *= self.shrink;
            for i in 0..n {
                let target = if i < bi { i } else { i + 1 };
                let mut x = best_point.clone();
                x[i] += s.rho;
                let v = eval(&x, &mut s.trace);
                s.vertices[target] = x;
                s.values[target] = v;
            }
        }
    }
}

impl Resumable for CobylaOptimizer {
    fn start(&self, initial: &[f64], _budget_hint: usize) -> OptimizerState {
        OptimizerState::Cobyla(CobylaState {
            initial: initial.to_vec(),
            vertices: Vec::new(),
            values: Vec::new(),
            rho: self.rho_begin,
            converged: false,
            trace: OptimizationTrace::new(),
        })
    }

    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        let OptimizerState::Cobyla(s) = state else {
            panic!(
                "CobylaOptimizer::resume_until given a {} state",
                state.kind_name()
            );
        };
        while !s.converged && s.trace.len() < target_evaluations {
            self.step(s, objective);
        }
        s.snapshot()
    }
}

impl Optimizer for CobylaOptimizer {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let mut state = self.start(initial, max_evaluations);
        self.resume_until(&mut state, objective, max_evaluations.max(1))
    }

    fn name(&self) -> &'static str {
        "cobyla"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_simple_system() {
        let mut a = vec![vec![2.0, 0.0], vec![0.0, 4.0]];
        let mut b = vec![2.0, 8.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singular() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear(&mut a, &mut b).is_none());
    }

    #[test]
    fn minimizes_quadratic() {
        let c = CobylaOptimizer::default();
        let r = c.minimize(
            &|x| (x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2),
            &[0.0, 0.0],
            300,
        );
        assert!(r.best_value < 1e-3, "best value {}", r.best_value);
        assert!((r.best_point[0] - 1.5).abs() < 0.05);
        assert!((r.best_point[1] + 0.5).abs() < 0.05);
    }

    #[test]
    fn minimizes_periodic_qaoa_like_landscape() {
        let c = CobylaOptimizer::default();
        // Global minimum of this landscape is -0.75 (at sin(x0) = 1/2, x1 = 0).
        let f = |x: &[f64]| -(x[0].sin() * x[1].cos() + 0.5 * (2.0 * x[0]).cos());
        let r = c.minimize(&f, &[0.3, 0.2], 200);
        assert!(r.best_value < -0.74, "best value {}", r.best_value);
    }

    #[test]
    fn respects_budget() {
        let c = CobylaOptimizer::default();
        let r = c.minimize(&|x| x.iter().map(|v| v * v).sum(), &[1.0, 1.0, 1.0], 25);
        assert!(r.evaluations <= 25 + 3, "used {}", r.evaluations);
    }

    #[test]
    fn improves_over_initial_point() {
        let c = CobylaOptimizer::default();
        let f = |x: &[f64]| (x[0] + 2.0).powi(2);
        let initial_value = f(&[1.0]);
        let r = c.minimize(&f, &[1.0], 100);
        assert!(r.best_value < initial_value);
    }

    #[test]
    fn zero_dimensional_input() {
        let c = CobylaOptimizer::default();
        let r = c.minimize(&|_| 3.5, &[], 10);
        assert_eq!(r.best_value, 3.5);
        assert!(r.converged);
    }

    #[test]
    fn converges_before_budget_on_easy_problem() {
        let c = CobylaOptimizer {
            rho_begin: 0.5,
            rho_end: 1e-3,
            shrink: 0.5,
        };
        let r = c.minimize(&|x| x[0] * x[0], &[0.2], 5000);
        assert!(r.converged);
        assert!(r.evaluations < 5000);
    }
}
