//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! SPSA estimates the gradient with two objective evaluations per iteration
//! regardless of dimension, which makes it a common choice for noisy
//! variational-quantum objectives. It is included here as an alternative
//! evaluator optimizer and as a subject of the optimizer-comparison ablation
//! bench.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::Optimizer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SPSA with the standard gain sequences `a_k = a / (k + 1 + A)^alpha` and
/// `c_k = c / (k + 1)^gamma`.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Step-size numerator `a`.
    pub a: f64,
    /// Perturbation-size numerator `c`.
    pub c: f64,
    /// Stability constant `A`.
    pub stability: f64,
    /// Step-size decay exponent `alpha`.
    pub alpha: f64,
    /// Perturbation decay exponent `gamma`.
    pub gamma: f64,
    /// RNG seed (SPSA is stochastic; fixing the seed keeps runs reproducible).
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.2,
            c: 0.15,
            stability: 10.0,
            alpha: 0.602,
            gamma: 0.101,
            seed: 0x5B5A,
        }
    }
}

impl Spsa {
    /// SPSA with an explicit seed and otherwise default hyper-parameters.
    pub fn with_seed(seed: u64) -> Self {
        Spsa {
            seed,
            ..Spsa::default()
        }
    }
}

impl Optimizer for Spsa {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let n = initial.len();
        let budget = max_evaluations.max(1);
        let mut trace = OptimizationTrace::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        let mut x = initial.to_vec();
        let mut best_point = x.clone();
        let mut best_value = objective(&x);
        trace.record(best_value);

        if n == 0 {
            return OptimizationResult::from_trace(best_point, best_value, true, trace);
        }

        let mut k = 0usize;
        // Each iteration consumes two evaluations (plus occasionally one to
        // track the current iterate).
        while trace.len() + 2 <= budget {
            let ak = self.a / ((k as f64) + 1.0 + self.stability).powf(self.alpha);
            let ck = self.c / ((k as f64) + 1.0).powf(self.gamma);

            // Rademacher perturbation.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();

            let x_plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let x_minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();

            let f_plus = objective(&x_plus);
            trace.record(f_plus);
            let f_minus = objective(&x_minus);
            trace.record(f_minus);

            // Gradient estimate and update.
            for i in 0..n {
                let g = (f_plus - f_minus) / (2.0 * ck * delta[i]);
                x[i] -= ak * g;
            }

            // Track the best of the probe points and (periodically) the iterate.
            if f_plus < best_value {
                best_value = f_plus;
                best_point = x_plus;
            }
            if f_minus < best_value {
                best_value = f_minus;
                best_point = x_minus;
            }
            if trace.len() < budget && k % 10 == 9 {
                let f_x = objective(&x);
                trace.record(f_x);
                if f_x < best_value {
                    best_value = f_x;
                    best_point = x.clone();
                }
            }
            k += 1;
        }

        // Final check of the last iterate if the budget allows.
        if trace.len() < budget {
            let f_x = objective(&x);
            trace.record(f_x);
            if f_x < best_value {
                best_value = f_x;
                best_point = x;
            }
        }

        OptimizationResult::from_trace(best_point, best_value, false, trace)
    }

    fn name(&self) -> &'static str {
        "spsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let spsa = Spsa::default();
        let r = spsa.minimize(
            &|x| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2),
            &[0.0, 0.0],
            2000,
        );
        assert!(r.best_value < 0.05, "best value {}", r.best_value);
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x[0].sin() + x[0] * x[0];
        let a = Spsa::with_seed(7).minimize(&f, &[1.0], 200);
        let b = Spsa::with_seed(7).minimize(&f, &[1.0], 200);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.best_point, b.best_point);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let f = |x: &[f64]| x[0].sin() * x[1].cos() + 0.1 * (x[0] * x[0] + x[1] * x[1]);
        let a = Spsa::with_seed(1).minimize(&f, &[0.5, 0.5], 300);
        let b = Spsa::with_seed(2).minimize(&f, &[0.5, 0.5], 300);
        assert_ne!(a.trace.points(), b.trace.points());
    }

    #[test]
    fn respects_budget() {
        let spsa = Spsa::default();
        let r = spsa.minimize(&|x| x[0] * x[0], &[2.0], 50);
        assert!(r.evaluations <= 50);
    }

    #[test]
    fn improves_over_initial_value_on_smooth_problem() {
        let spsa = Spsa::default();
        let f = |x: &[f64]| (x[0] - 0.7).powi(2);
        let initial = f(&[0.0]);
        let r = spsa.minimize(&f, &[0.0], 500);
        assert!(r.best_value < initial);
    }

    #[test]
    fn zero_dimensional_input() {
        let spsa = Spsa::default();
        let r = spsa.minimize(&|_| -2.0, &[], 10);
        assert_eq!(r.best_value, -2.0);
    }
}
