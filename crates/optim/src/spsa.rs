//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! SPSA estimates the gradient with two objective evaluations per iteration
//! regardless of dimension, which makes it a common choice for noisy
//! variational-quantum objectives. It is included here as an alternative
//! evaluator optimizer and as a subject of the optimizer-comparison ablation
//! bench.
//!
//! The run is a sequence of atomic perturbation-pair iterations over an
//! explicit [`SpsaState`] (iterate, gain counter, RNG stream), so a paused
//! run [resumes](crate::Resumable) on the exact same stochastic trajectory.
//! Each iteration's evaluation cost is known up front (2, plus 1 every tenth
//! iteration for the iterate check), and an iteration only begins when it
//! fits the remaining budget — SPSA never overshoots. (The pre-resumable
//! implementation spent one extra evaluation on the final iterate when the
//! budget allowed; that check depended on knowing which call was the last
//! one, which a resumable run cannot, so seeded results differ slightly
//! from releases before the checkpoint API.)

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::resumable::{BatchProposal, OptimizerState, Resumable};
use crate::Optimizer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outstanding batch proposal of an SPSA state (batch protocol only; always
/// `None` between driver calls).
#[derive(Debug, Clone)]
pub(crate) enum SpsaPending {
    /// The initial evaluation of the iterate.
    Init,
    /// A ± perturbation pair; `delta` is the Rademacher draw shared by both.
    Pair { delta: Vec<f64> },
    /// The periodic iterate check closing a tenth iteration.
    Check,
}

/// SPSA with the standard gain sequences `a_k = a / (k + 1 + A)^alpha` and
/// `c_k = c / (k + 1)^gamma`.
#[derive(Debug, Clone)]
pub struct Spsa {
    /// Step-size numerator `a`.
    pub a: f64,
    /// Perturbation-size numerator `c`.
    pub c: f64,
    /// Stability constant `A`.
    pub stability: f64,
    /// Step-size decay exponent `alpha`.
    pub alpha: f64,
    /// Perturbation decay exponent `gamma`.
    pub gamma: f64,
    /// RNG seed (SPSA is stochastic; fixing the seed keeps runs reproducible).
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.2,
            c: 0.15,
            stability: 10.0,
            alpha: 0.602,
            gamma: 0.101,
            seed: 0x5B5A,
        }
    }
}

impl Spsa {
    /// SPSA with an explicit seed and otherwise default hyper-parameters.
    pub fn with_seed(seed: u64) -> Self {
        Spsa {
            seed,
            ..Spsa::default()
        }
    }
}

/// Checkpointed state of an SPSA run (see [`Resumable`]).
#[derive(Debug, Clone)]
pub struct SpsaState {
    pub(crate) x: Vec<f64>,
    pub(crate) best_point: Vec<f64>,
    pub(crate) best_value: f64,
    pub(crate) k: usize,
    pub(crate) started: bool,
    pub(crate) converged: bool,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) trace: OptimizationTrace,
    /// Batch protocol bookkeeping: the unobserved proposal, if any.
    pub(crate) pending: Option<SpsaPending>,
    /// A tenth iteration's pair has been observed but its iterate check has
    /// not run yet (drained before `resume_until_batched` returns).
    pub(crate) check_due: bool,
}

impl SpsaState {
    pub(crate) fn snapshot(&self) -> OptimizationResult {
        OptimizationResult::from_trace(
            self.best_point.clone(),
            self.best_value,
            self.converged,
            self.trace.clone(),
        )
    }
}

impl Spsa {
    /// Evaluation cost of iteration `k` (a perturbation pair, plus the
    /// periodic iterate check every tenth iteration).
    fn iteration_cost(k: usize) -> usize {
        if k % 10 == 9 {
            3
        } else {
            2
        }
    }

    /// One atomic SPSA iteration.
    fn step(&self, s: &mut SpsaState, objective: &(dyn Fn(&[f64]) -> f64 + Sync)) {
        let n = s.x.len();
        let ak = self.a / ((s.k as f64) + 1.0 + self.stability).powf(self.alpha);
        let ck = self.c / ((s.k as f64) + 1.0).powf(self.gamma);

        // Rademacher perturbation.
        let delta: Vec<f64> = (0..n)
            .map(|_| if s.rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();

        let x_plus: Vec<f64> = s.x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
        let x_minus: Vec<f64> = s.x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();

        let f_plus = objective(&x_plus);
        s.trace.record(f_plus);
        let f_minus = objective(&x_minus);
        s.trace.record(f_minus);

        // Gradient estimate and update.
        for (xi, d) in s.x.iter_mut().zip(&delta) {
            let g = (f_plus - f_minus) / (2.0 * ck * d);
            *xi -= ak * g;
        }

        // Track the best of the probe points and (periodically) the iterate.
        if f_plus < s.best_value {
            s.best_value = f_plus;
            s.best_point = x_plus;
        }
        if f_minus < s.best_value {
            s.best_value = f_minus;
            s.best_point = x_minus;
        }
        if s.k % 10 == 9 {
            let f_x = objective(&s.x);
            s.trace.record(f_x);
            if f_x < s.best_value {
                s.best_value = f_x;
                s.best_point = s.x.clone();
            }
        }
        s.k += 1;
    }
}

impl Resumable for Spsa {
    fn start(&self, initial: &[f64], _budget_hint: usize) -> OptimizerState {
        OptimizerState::Spsa(SpsaState {
            x: initial.to_vec(),
            best_point: initial.to_vec(),
            best_value: f64::INFINITY,
            k: 0,
            started: false,
            converged: false,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            trace: OptimizationTrace::new(),
            pending: None,
            check_due: false,
        })
    }

    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        let OptimizerState::Spsa(s) = state else {
            panic!("Spsa::resume_until given a {} state", state.kind_name());
        };
        assert!(
            s.pending.is_none() && !s.check_due,
            "scalar resume on an SPSA state mid-batch-proposal"
        );
        if !s.started && target_evaluations > 0 {
            let v = objective(&s.x);
            s.trace.record(v);
            s.best_value = v;
            s.best_point = s.x.clone();
            s.started = true;
            if s.x.is_empty() {
                s.converged = true;
            }
        }
        while !s.converged && s.trace.len() + Spsa::iteration_cost(s.k) <= target_evaluations {
            self.step(s, objective);
        }
        s.snapshot()
    }

    /// SPSA's natural probe set is the ± perturbation pair: both probes
    /// depend only on the pre-step iterate and the Rademacher draw, so they
    /// can be evaluated together. The periodic iterate check and the initial
    /// evaluation go out as singletons, reproducing the scalar evaluation
    /// order exactly.
    fn propose_batch(
        &self,
        state: &mut OptimizerState,
        target_evaluations: usize,
    ) -> BatchProposal {
        let OptimizerState::Spsa(s) = state else {
            panic!("Spsa::propose_batch given a {} state", state.kind_name());
        };
        assert!(
            s.pending.is_none(),
            "propose_batch with an unobserved proposal"
        );
        if !s.started {
            if target_evaluations == 0 {
                return BatchProposal::Exhausted;
            }
            s.pending = Some(SpsaPending::Init);
            return BatchProposal::Points(vec![s.x.clone()]);
        }
        if s.converged {
            return BatchProposal::Exhausted;
        }
        if s.check_due {
            // Closes an iteration whose full cost was reserved when the pair
            // was proposed, so no budget gate here (matching `step`).
            s.pending = Some(SpsaPending::Check);
            return BatchProposal::Points(vec![s.x.clone()]);
        }
        if s.trace.len() + Spsa::iteration_cost(s.k) <= target_evaluations {
            let ck = self.c / ((s.k as f64) + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..s.x.len())
                .map(|_| if s.rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let x_plus: Vec<f64> = s.x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let x_minus: Vec<f64> = s.x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            s.pending = Some(SpsaPending::Pair { delta });
            return BatchProposal::Points(vec![x_plus, x_minus]);
        }
        BatchProposal::Exhausted
    }

    fn observe_batch(&self, state: &mut OptimizerState, points: &[Vec<f64>], values: &[f64]) {
        let OptimizerState::Spsa(s) = state else {
            panic!("Spsa::observe_batch given a {} state", state.kind_name());
        };
        match s.pending.take() {
            Some(SpsaPending::Init) => {
                let v = values[0];
                s.trace.record(v);
                s.best_value = v;
                s.best_point = s.x.clone();
                s.started = true;
                if s.x.is_empty() {
                    s.converged = true;
                }
            }
            Some(SpsaPending::Pair { delta }) => {
                // Same arithmetic as `step`, with the pair values arriving
                // together; the gain sequences are recomputed from the
                // unchanged `k`, so `ck` here is bitwise the `ck` that shaped
                // the proposed points.
                let ak = self.a / ((s.k as f64) + 1.0 + self.stability).powf(self.alpha);
                let ck = self.c / ((s.k as f64) + 1.0).powf(self.gamma);
                let (f_plus, f_minus) = (values[0], values[1]);
                s.trace.record(f_plus);
                s.trace.record(f_minus);
                for (xi, d) in s.x.iter_mut().zip(&delta) {
                    let g = (f_plus - f_minus) / (2.0 * ck * d);
                    *xi -= ak * g;
                }
                if f_plus < s.best_value {
                    s.best_value = f_plus;
                    s.best_point = points[0].clone();
                }
                if f_minus < s.best_value {
                    s.best_value = f_minus;
                    s.best_point = points[1].clone();
                }
                if s.k % 10 == 9 {
                    s.check_due = true;
                } else {
                    s.k += 1;
                }
            }
            Some(SpsaPending::Check) => {
                let f_x = values[0];
                s.trace.record(f_x);
                if f_x < s.best_value {
                    s.best_value = f_x;
                    s.best_point = s.x.clone();
                }
                s.check_due = false;
                s.k += 1;
            }
            None => panic!("Spsa::observe_batch without a matching propose_batch"),
        }
    }
}

impl Optimizer for Spsa {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let mut state = self.start(initial, max_evaluations);
        self.resume_until(&mut state, objective, max_evaluations.max(1))
    }

    fn name(&self) -> &'static str {
        "spsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let spsa = Spsa::default();
        let r = spsa.minimize(
            &|x| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2),
            &[0.0, 0.0],
            2000,
        );
        assert!(r.best_value < 0.05, "best value {}", r.best_value);
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x[0].sin() + x[0] * x[0];
        let a = Spsa::with_seed(7).minimize(&f, &[1.0], 200);
        let b = Spsa::with_seed(7).minimize(&f, &[1.0], 200);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.best_point, b.best_point);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let f = |x: &[f64]| x[0].sin() * x[1].cos() + 0.1 * (x[0] * x[0] + x[1] * x[1]);
        let a = Spsa::with_seed(1).minimize(&f, &[0.5, 0.5], 300);
        let b = Spsa::with_seed(2).minimize(&f, &[0.5, 0.5], 300);
        assert_ne!(a.trace.points(), b.trace.points());
    }

    #[test]
    fn respects_budget() {
        let spsa = Spsa::default();
        let r = spsa.minimize(&|x| x[0] * x[0], &[2.0], 50);
        assert!(r.evaluations <= 50);
    }

    #[test]
    fn improves_over_initial_value_on_smooth_problem() {
        let spsa = Spsa::default();
        let f = |x: &[f64]| (x[0] - 0.7).powi(2);
        let initial = f(&[0.0]);
        let r = spsa.minimize(&f, &[0.0], 500);
        assert!(r.best_value < initial);
    }

    #[test]
    fn zero_dimensional_input() {
        let spsa = Spsa::default();
        let r = spsa.minimize(&|_| -2.0, &[], 10);
        assert_eq!(r.best_value, -2.0);
    }
}
