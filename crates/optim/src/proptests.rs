//! Property-based tests shared by all optimizers.

use crate::{CobylaOptimizer, GridSearch, NelderMead, Optimizer, RandomSearch, Resumable, Spsa};
use proptest::prelude::*;

fn optimizers() -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(CobylaOptimizer::default()),
        Box::new(NelderMead::default()),
        Box::new(Spsa::default()),
        Box::new(RandomSearch::default()),
        Box::new(GridSearch::default()),
    ]
}

fn resumables() -> Vec<Box<dyn Resumable>> {
    vec![
        Box::new(CobylaOptimizer::default()),
        Box::new(NelderMead::default()),
        Box::new(Spsa::default()),
        Box::new(RandomSearch::default()),
        Box::new(GridSearch::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizers_never_return_worse_than_best_trace_value(
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
        shift in -1.0f64..1.0,
    ) {
        let f = move |x: &[f64]| (x[0] - shift).powi(2) + (x[1] + shift).powi(2);
        for opt in optimizers() {
            let r = opt.minimize(&f, &[x0, x1], 80);
            // The reported best value matches the minimum of the trace.
            let trace_best = r.trace.best().unwrap();
            prop_assert!((r.best_value - trace_best).abs() < 1e-9,
                "{}: best_value {} != trace best {}", opt.name(), r.best_value, trace_best);
            // The reported point actually evaluates to the reported value.
            prop_assert!((f(&r.best_point) - r.best_value).abs() < 1e-9,
                "{}: point/value mismatch", opt.name());
        }
    }

    #[test]
    fn optimizers_respect_budget(x0 in -1.0f64..1.0, budget in 5usize..60) {
        let f = |x: &[f64]| x[0].powi(2);
        for opt in optimizers() {
            let r = opt.minimize(&f, &[x0], budget);
            // Allow a small overshoot for optimizers that finish their
            // current iteration (documented in the trait).
            prop_assert!(r.evaluations <= budget + 4,
                "{} used {} evaluations with budget {}", opt.name(), r.evaluations, budget);
        }
    }

    /// Interrupting a run after `k` evaluations and finishing later must be
    /// bit-identical regardless of whether the interrupted leg was driven
    /// through the batch protocol or the scalar one (ISSUE 6, satellite 3).
    #[test]
    fn resume_after_batched_leg_is_bitwise_identical_to_scalar_leg(
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
        k in 1usize..40,
        budget in 40usize..90,
    ) {
        let f = move |x: &[f64]| (x[0] - 0.7).powi(2) + (x[1] + 0.3).powi(2) + (x[0] * x[1]).cos();
        let mut batch_f = |points: &[Vec<f64>]| points.iter().map(|p| f(p)).collect::<Vec<f64>>();
        for opt in resumables() {
            // Reference: scalar leg to k, then scalar to budget.
            let mut scalar_state = opt.start(&[x0, x1], budget);
            opt.resume_until(&mut scalar_state, &f, k);
            let scalar = opt.resume_until(&mut scalar_state, &f, budget);

            // Batched leg to k, then scalar to budget.
            let mut state = opt.start(&[x0, x1], budget);
            opt.resume_until_batched(&mut state, &mut batch_f, &f, k);
            let mixed = opt.resume_until(&mut state, &f, budget);

            prop_assert_eq!(&scalar.best_point, &mixed.best_point, "{}: best point", opt.name());
            prop_assert_eq!(scalar.best_value.to_bits(), mixed.best_value.to_bits(),
                "{}: best value", opt.name());
            prop_assert_eq!(scalar.evaluations, mixed.evaluations,
                "{}: evaluation count", opt.name());
            let (sp, mp) = (scalar.trace.points(), mixed.trace.points());
            prop_assert_eq!(sp.len(), mp.len(), "{}: trace length", opt.name());
            for (a, b) in sp.iter().zip(mp) {
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits(),
                    "{}: trace value", opt.name());
            }
        }
    }

    #[test]
    fn best_curve_is_monotone_nonincreasing(x0 in -2.0f64..2.0) {
        let f = |x: &[f64]| x[0].sin() + 0.3 * x[0] * x[0];
        for opt in optimizers() {
            let r = opt.minimize(&f, &[x0], 60);
            let curve = r.trace.best_curve();
            for w in curve.windows(2) {
                prop_assert!(w[1] <= w[0] + 1e-12, "{}: best curve increased", opt.name());
            }
        }
    }
}
