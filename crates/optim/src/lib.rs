//! # optim — classical optimizers for variational quantum circuits
//!
//! The QArchSearch **Evaluator** trains each candidate QAOA circuit "for 200
//! steps with the COBYLA optimizer" (§2.1). This crate provides that
//! optimizer along with several alternatives behind one [`Optimizer`] trait:
//!
//! * [`CobylaOptimizer`] — a linear-approximation trust-region method in the
//!   spirit of Powell's COBYLA, restricted to the unconstrained case the
//!   paper needs (bound constraints on the angles are handled by clamping).
//! * [`NelderMead`] — the classic derivative-free simplex method.
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation, a common
//!   choice for noisy quantum objective functions.
//! * [`RandomSearch`] and [`GridSearch`] — trivial baselines that are useful
//!   in ablations and tests.
//!
//! All optimizers **minimize**; QAOA energy maximization is expressed by
//! minimizing the negated expectation.
//!
//! Every bundled optimizer is also [`Resumable`]: a run can be checkpointed
//! as an [`OptimizerState`] and continued later with a larger budget, which
//! is what the search package's successive-halving pruner builds on. See
//! [`resumable`] for the contract and a worked example.
//!
//! ```
//! use optim::{NelderMead, Optimizer};
//!
//! // Minimize a shifted quadratic.
//! let nm = NelderMead::default();
//! let result = nm.minimize(&|x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
//!                          &[0.0, 0.0], 200);
//! assert!((result.best_point[0] - 1.0).abs() < 1e-3);
//! assert!((result.best_point[1] + 2.0).abs() < 1e-3);
//! ```

pub mod cobyla;
pub mod grid;
pub mod nelder_mead;
pub mod random_search;
pub mod result;
pub mod resumable;
pub mod spsa;

pub use cobyla::CobylaOptimizer;
pub use grid::GridSearch;
pub use nelder_mead::NelderMead;
pub use random_search::RandomSearch;
pub use result::{OptimizationResult, OptimizationTrace};
pub use resumable::{BatchProposal, OptimizerState, Resumable};
pub use spsa::Spsa;

use serde::{Deserialize, Serialize};

/// A derivative-free minimizer of `f: R^n -> R`.
pub trait Optimizer: Send + Sync {
    /// Minimize `objective` starting from `initial`, with a budget of
    /// `max_evaluations` objective calls. Implementations may use fewer
    /// evaluations but must not exceed the budget by more than the cost of
    /// finishing their current iteration.
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> &'static str;
}

/// Enumeration of the bundled optimizers, convenient for configuration files
/// and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// COBYLA-style linear trust-region method (the paper's default).
    Cobyla,
    /// Nelder–Mead simplex.
    NelderMead,
    /// SPSA.
    Spsa,
    /// Uniform random search within a box.
    RandomSearch,
    /// Uniform grid search within a box.
    GridSearch,
}

impl OptimizerKind {
    /// Instantiate the optimizer with default hyper-parameters.
    pub fn build(self) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Cobyla => Box::new(CobylaOptimizer::default()),
            OptimizerKind::NelderMead => Box::new(NelderMead::default()),
            OptimizerKind::Spsa => Box::new(Spsa::default()),
            OptimizerKind::RandomSearch => Box::new(RandomSearch::default()),
            OptimizerKind::GridSearch => Box::new(GridSearch::default()),
        }
    }

    /// Instantiate the optimizer behind the [`Resumable`] interface (every
    /// bundled optimizer supports checkpoint/resume).
    pub fn build_resumable(self) -> Box<dyn Resumable> {
        match self {
            OptimizerKind::Cobyla => Box::new(CobylaOptimizer::default()),
            OptimizerKind::NelderMead => Box::new(NelderMead::default()),
            OptimizerKind::Spsa => Box::new(Spsa::default()),
            OptimizerKind::RandomSearch => Box::new(RandomSearch::default()),
            OptimizerKind::GridSearch => Box::new(GridSearch::default()),
        }
    }

    /// All bundled optimizer kinds.
    pub fn all() -> &'static [OptimizerKind] {
        &[
            OptimizerKind::Cobyla,
            OptimizerKind::NelderMead,
            OptimizerKind::Spsa,
            OptimizerKind::RandomSearch,
            OptimizerKind::GridSearch,
        ]
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptimizerKind::Cobyla => "cobyla",
            OptimizerKind::NelderMead => "nelder-mead",
            OptimizerKind::Spsa => "spsa",
            OptimizerKind::RandomSearch => "random-search",
            OptimizerKind::GridSearch => "grid-search",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for OptimizerKind {
    type Err = graphs::ParseKindError;

    /// Parse an optimizer name. Round-trips with
    /// [`Display`](std::fmt::Display); the short aliases `nm`, `random` and
    /// `grid` are also accepted.
    fn from_str(spec: &str) -> Result<OptimizerKind, Self::Err> {
        match spec {
            "cobyla" => Ok(OptimizerKind::Cobyla),
            "nelder-mead" | "nm" => Ok(OptimizerKind::NelderMead),
            "spsa" => Ok(OptimizerKind::Spsa),
            "random-search" | "random" => Ok(OptimizerKind::RandomSearch),
            "grid-search" | "grid" => Ok(OptimizerKind::GridSearch),
            other => Err(graphs::ParseKindError::new(
                "optimizer",
                other,
                "cobyla, nelder-mead, spsa, random-search, grid-search",
            )),
        }
    }
}

#[cfg(test)]
mod kind_tests {
    use super::OptimizerKind;

    #[test]
    fn optimizer_kind_display_from_str_round_trips_exhaustively() {
        for &kind in OptimizerKind::all() {
            let parsed: OptimizerKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        let err = "adam".parse::<OptimizerKind>().unwrap_err();
        assert_eq!(err.what, "optimizer");
        assert!(err.to_string().contains("cobyla"), "{err}");
    }
}

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod test_functions;
