//! Checkpointable optimization: pause a run, resume it later with more budget.
//!
//! The QArchSearch evaluation pipeline prunes candidates with **successive
//! halving**: every candidate is trained with a small evaluation budget, the
//! top fraction is promoted, and promoted candidates *continue* training with
//! a larger budget. Continuing requires the optimizer to pick up exactly
//! where it stopped — same simplex, same trust region, same RNG stream —
//! instead of restarting from scratch. The [`Resumable`] trait provides that:
//!
//! * [`Resumable::start`] builds an [`OptimizerState`] checkpoint without
//!   consuming any objective evaluations, and
//! * [`Resumable::resume_until`] advances the state until its *cumulative*
//!   evaluation count reaches a target (or the optimizer converges).
//!
//! Every bundled optimizer implements the trait, and each implements
//! [`Optimizer::minimize`] *in terms of* `start` + `resume_until`, which
//! makes the central guarantee structural rather than aspirational:
//!
//! > resuming after `k` evaluations and finishing later is **bit-identical**
//! > to one uninterrupted run with the full budget.
//!
//! Optimizers advance in *atomic steps* (a whole simplex initialization, a
//! whole Nelder–Mead iteration, an SPSA perturbation pair). A step either
//! runs to completion or is not started, so the evaluation sequence depends
//! only on the state — never on where a budget boundary happens to fall.
//! Steps may overshoot the target by the cost of finishing the current step,
//! exactly the slack [`Optimizer::minimize`] has always documented.
//!
//! # Worked example
//!
//! ```
//! use optim::{CobylaOptimizer, Optimizer, Resumable};
//!
//! let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
//! let opt = CobylaOptimizer::default();
//!
//! // One uninterrupted run with 120 evaluations...
//! let full = opt.minimize(&f, &[0.0, 0.0], 120);
//!
//! // ...equals a run paused at 40 evaluations and resumed twice.
//! let mut state = opt.start(&[0.0, 0.0], 120);
//! opt.resume_until(&mut state, &f, 40);   // rung 0
//! opt.resume_until(&mut state, &f, 80);   // promoted: keep going
//! let resumed = opt.resume_until(&mut state, &f, 120);
//!
//! assert_eq!(full.best_point, resumed.best_point);
//! assert_eq!(full.best_value, resumed.best_value);
//! assert_eq!(full.evaluations, resumed.evaluations);
//! ```

use crate::cobyla::CobylaState;
use crate::grid::GridState;
use crate::nelder_mead::NelderMeadState;
use crate::random_search::RandomSearchState;
use crate::result::OptimizationResult;
use crate::spsa::SpsaState;
use crate::Optimizer;

/// A checkpoint of an in-flight optimization run.
///
/// Produced by [`Resumable::start`], advanced in place by
/// [`Resumable::resume_until`]. The variant must match the optimizer that
/// created it; handing a state to a different optimizer kind is a logic
/// error and panics.
#[derive(Debug, Clone)]
pub enum OptimizerState {
    /// COBYLA trust-region state (simplex, radius, trace).
    Cobyla(CobylaState),
    /// Nelder–Mead simplex state.
    NelderMead(NelderMeadState),
    /// SPSA iterate, gain counter and RNG stream.
    Spsa(SpsaState),
    /// Random-search RNG stream and incumbent.
    RandomSearch(RandomSearchState),
    /// Grid-search cursor and incumbent.
    GridSearch(GridState),
}

impl OptimizerState {
    /// Cumulative objective evaluations consumed so far.
    pub fn evaluations(&self) -> usize {
        match self {
            OptimizerState::Cobyla(s) => s.trace.len(),
            OptimizerState::NelderMead(s) => s.trace.len(),
            OptimizerState::Spsa(s) => s.trace.len(),
            OptimizerState::RandomSearch(s) => s.trace.len(),
            OptimizerState::GridSearch(s) => s.trace.len(),
        }
    }

    /// Whether the run has converged (no further evaluations will be spent
    /// even if the target grows).
    pub fn converged(&self) -> bool {
        match self {
            OptimizerState::Cobyla(s) => s.converged,
            OptimizerState::NelderMead(s) => s.converged,
            OptimizerState::Spsa(s) => s.converged,
            OptimizerState::RandomSearch(s) => s.converged,
            OptimizerState::GridSearch(s) => s.converged,
        }
    }

    /// Snapshot the best result found so far without advancing the run.
    pub fn result(&self) -> OptimizationResult {
        match self {
            OptimizerState::Cobyla(s) => s.snapshot(),
            OptimizerState::NelderMead(s) => s.snapshot(),
            OptimizerState::Spsa(s) => s.snapshot(),
            OptimizerState::RandomSearch(s) => s.snapshot(),
            OptimizerState::GridSearch(s) => s.snapshot(),
        }
    }

    /// Human-readable variant name, used in mismatch panics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OptimizerState::Cobyla(_) => "cobyla",
            OptimizerState::NelderMead(_) => "nelder-mead",
            OptimizerState::Spsa(_) => "spsa",
            OptimizerState::RandomSearch(_) => "random-search",
            OptimizerState::GridSearch(_) => "grid-search",
        }
    }
}

/// One round of the batch-step protocol (see
/// [`Resumable::propose_batch`]).
#[derive(Debug, Clone)]
pub enum BatchProposal {
    /// Evaluate these points (in order) and hand the values back via
    /// [`Resumable::observe_batch`]. Never empty.
    Points(Vec<Vec<f64>>),
    /// The optimizer's next step cannot be expressed as an up-front point
    /// set (it branches on values mid-step); fall back to the scalar
    /// [`Resumable::resume_until`] path for the rest of the rung. Since the
    /// scalar path is the reference semantics, this arm is trivially
    /// bit-identical.
    Scalar,
    /// Nothing left to do within the target (converged, exhausted, or the
    /// next atomic step does not fit the remaining budget).
    Exhausted,
}

/// A minimizer whose runs can be checkpointed and continued.
///
/// See the [module documentation](self) for the contract and a worked
/// example. Implementations guarantee that for any increasing sequence of
/// targets `t_1 < t_2 < … < t_m = B`, chaining
/// `resume_until(t_1), …, resume_until(t_m)` performs exactly the same
/// objective evaluations as a single `minimize(…, B)` call.
///
/// # Batch stepping
///
/// The batch protocol lets a caller that can evaluate several points in one
/// sweep (see `CompiledEnergy::energy_batch_in` in the `qaoa` crate) pull an
/// optimizer's *natural probe set* out of it instead of being called back
/// one point at a time: SPSA's ± perturbation pair, Nelder–Mead's initial
/// simplex vertices, grid/random search's whole populations. The contract is
/// strict bit-identity: driving a state with
/// [`Resumable::resume_until_batched`] performs exactly the same objective
/// evaluations, in the same order, with the same f64 arithmetic on the
/// results, as [`Resumable::resume_until`] with the same target — so the two
/// are interchangeable mid-run, checkpoint for checkpoint. The default
/// implementation proposes [`BatchProposal::Scalar`], which makes every
/// existing implementor batch-capable (at batch size 1) by construction.
pub trait Resumable: Optimizer {
    /// Create a fresh checkpoint at `initial`. No objective evaluations are
    /// consumed. `budget_hint` is the total evaluation budget the run is
    /// expected to receive across all `resume_until` calls; grid search uses
    /// it to lay out its grid, the other optimizers ignore it.
    fn start(&self, initial: &[f64], budget_hint: usize) -> OptimizerState;

    /// Advance `state` until its cumulative evaluation count reaches
    /// `target_evaluations` (give or take one atomic step) or the run
    /// converges, then return a snapshot of the best result so far.
    ///
    /// A target at or below the current count is a no-op snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `state` was produced by a different optimizer kind.
    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult;

    /// Propose the next set of points to evaluate together, given that the
    /// run may spend evaluations up to `target_evaluations` in total.
    ///
    /// Implementations may mutate `state` (e.g. draw the RNG that shapes the
    /// points), but every [`BatchProposal::Points`] return must be followed
    /// by exactly one [`Resumable::observe_batch`] call with the values
    /// before the next `propose_batch` / `resume_until`. The default
    /// delegates the whole rung to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `state` was produced by a different optimizer kind.
    fn propose_batch(
        &self,
        state: &mut OptimizerState,
        target_evaluations: usize,
    ) -> BatchProposal {
        let _ = (state, target_evaluations);
        BatchProposal::Scalar
    }

    /// Feed the objective values for the points of the immediately preceding
    /// [`BatchProposal::Points`] back into `state`, applying exactly the
    /// f64 updates the scalar path would apply after evaluating the same
    /// points in order.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding proposal (the default
    /// `propose_batch` never returns `Points`, so the default here is
    /// unreachable by contract) or if `state` is of the wrong kind.
    fn observe_batch(&self, state: &mut OptimizerState, points: &[Vec<f64>], values: &[f64]) {
        let _ = (points, values);
        panic!(
            "observe_batch without a matching propose_batch on a {} state",
            state.kind_name()
        );
    }

    /// Advance `state` to `target_evaluations` through the batch protocol:
    /// repeatedly propose a point set, evaluate it with `batch_objective`,
    /// and observe the values — falling back to the scalar `objective` when
    /// the optimizer cannot batch its next step. Bit-identical to
    /// [`Resumable::resume_until`] with the same target (see the trait docs).
    ///
    /// `batch_objective` must return one value per point, equal to what
    /// `objective` would return for that point — the batch evaluator's own
    /// bit-identity guarantee supplies exactly that.
    fn resume_until_batched(
        &self,
        state: &mut OptimizerState,
        batch_objective: &mut dyn FnMut(&[Vec<f64>]) -> Vec<f64>,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        loop {
            match self.propose_batch(state, target_evaluations) {
                BatchProposal::Exhausted => return state.result(),
                BatchProposal::Scalar => {
                    return self.resume_until(state, objective, target_evaluations)
                }
                BatchProposal::Points(points) => {
                    let values = batch_objective(&points);
                    assert_eq!(
                        values.len(),
                        points.len(),
                        "batch objective returned {} values for {} points",
                        values.len(),
                        points.len()
                    );
                    self.observe_batch(state, &points, &values);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CobylaOptimizer, GridSearch, NelderMead, RandomSearch, Spsa};

    fn resumables() -> Vec<Box<dyn Resumable>> {
        vec![
            Box::new(CobylaOptimizer::default()),
            Box::new(NelderMead::default()),
            Box::new(Spsa::default()),
            Box::new(RandomSearch::default()),
            Box::new(GridSearch::default()),
        ]
    }

    /// The tentpole guarantee: resume-after-k equals one uninterrupted run,
    /// bit for bit, for every bundled optimizer.
    #[test]
    fn resume_after_k_steps_equals_uninterrupted_run() {
        let f = |x: &[f64]| (x[0] - 0.8).powi(2) + (x[1] + 0.4).powi(2) + (x[0] * x[1]).sin();
        let initial = [0.3, -0.2];
        let budget = 90;
        for opt in resumables() {
            let full = opt.minimize(&f, &initial, budget);

            for k in [1usize, 7, 25, 60] {
                let mut state = opt.start(&initial, budget);
                opt.resume_until(&mut state, &f, k);
                let resumed = opt.resume_until(&mut state, &f, budget);
                assert_eq!(
                    full.best_point,
                    resumed.best_point,
                    "{}: best point diverged after pause at {k}",
                    opt.name()
                );
                assert_eq!(
                    full.best_value,
                    resumed.best_value,
                    "{}: best value diverged after pause at {k}",
                    opt.name()
                );
                assert_eq!(
                    full.evaluations,
                    resumed.evaluations,
                    "{}: evaluation count diverged after pause at {k}",
                    opt.name()
                );
                assert_eq!(
                    full.trace.points(),
                    resumed.trace.points(),
                    "{}: trace diverged after pause at {k}",
                    opt.name()
                );
            }
        }
    }

    #[test]
    fn many_tiny_rungs_equal_one_run() {
        let f = |x: &[f64]| x[0].cos() + 0.2 * x[0] * x[0];
        for opt in resumables() {
            let full = opt.minimize(&f, &[1.1], 64);
            let mut state = opt.start(&[1.1], 64);
            for target in (1..=64).step_by(3) {
                opt.resume_until(&mut state, &f, target);
            }
            let last = opt.resume_until(&mut state, &f, 64);
            assert_eq!(full.trace.points(), last.trace.points(), "{}", opt.name());
            assert_eq!(full.best_value, last.best_value, "{}", opt.name());
        }
    }

    #[test]
    fn start_consumes_no_evaluations() {
        for opt in resumables() {
            let state = opt.start(&[0.5, 0.5], 50);
            assert_eq!(state.evaluations(), 0, "{}", opt.name());
            assert!(!state.converged(), "{}", opt.name());
        }
    }

    #[test]
    fn snapshot_before_any_resume_is_safe() {
        for opt in resumables() {
            let state = opt.start(&[0.5], 50);
            let r = state.result();
            assert_eq!(r.evaluations, 0, "{}", opt.name());
            assert_eq!(r.best_point, vec![0.5], "{}", opt.name());
        }
    }

    #[test]
    fn target_at_or_below_current_count_is_a_noop() {
        let f = |x: &[f64]| x[0] * x[0];
        for opt in resumables() {
            let mut state = opt.start(&[0.7], 40);
            let a = opt.resume_until(&mut state, &f, 20);
            let evals = state.evaluations();
            let b = opt.resume_until(&mut state, &f, evals);
            let c = opt.resume_until(&mut state, &f, 3);
            assert_eq!(a.trace.points(), b.trace.points(), "{}", opt.name());
            assert_eq!(b.trace.points(), c.trace.points(), "{}", opt.name());
        }
    }

    #[test]
    fn converged_state_stays_converged() {
        // A flat objective converges quickly for the simplex methods; the
        // state must then refuse further work even with a larger target.
        let f = |_: &[f64]| 1.0;
        let opt = NelderMead::default();
        let mut state = opt.start(&[0.1, 0.2], 500);
        opt.resume_until(&mut state, &f, 500);
        assert!(state.converged());
        let evals = state.evaluations();
        opt.resume_until(&mut state, &f, 5000);
        assert_eq!(state.evaluations(), evals);
    }

    #[test]
    #[should_panic(expected = "state")]
    fn mismatched_state_kind_panics() {
        let f = |x: &[f64]| x[0] * x[0];
        let mut state = NelderMead::default().start(&[0.1], 10);
        CobylaOptimizer::default().resume_until(&mut state, &f, 10);
    }

    #[test]
    fn zero_dimensional_runs_converge_immediately() {
        let f = |_: &[f64]| 4.2;
        for opt in resumables() {
            let mut state = opt.start(&[], 10);
            let r = opt.resume_until(&mut state, &f, 10);
            assert_eq!(r.best_value, 4.2, "{}", opt.name());
            assert!(state.converged(), "{}", opt.name());
            assert_eq!(state.evaluations(), 1, "{}", opt.name());
        }
    }

    /// Drive a state through the batch protocol, counting the points per
    /// batch call; the batch objective is the scalar one mapped over the
    /// points (exactly what the batch evaluator guarantees bitwise).
    fn run_batched(
        opt: &dyn Resumable,
        state: &mut OptimizerState,
        f: &(dyn Fn(&[f64]) -> f64 + Sync),
        target: usize,
        batch_sizes: &mut Vec<usize>,
    ) -> OptimizationResult {
        let mut batch_objective = |points: &[Vec<f64>]| {
            batch_sizes.push(points.len());
            points.iter().map(|p| f(p)).collect::<Vec<f64>>()
        };
        opt.resume_until_batched(state, &mut batch_objective, f, target)
    }

    fn assert_results_bitwise_equal(a: &OptimizationResult, b: &OptimizationResult, ctx: &str) {
        assert_eq!(a.best_point, b.best_point, "{ctx}: best point");
        assert_eq!(
            a.best_value.to_bits(),
            b.best_value.to_bits(),
            "{ctx}: best value"
        );
        assert_eq!(a.evaluations, b.evaluations, "{ctx}: evaluation count");
        assert_eq!(a.converged, b.converged, "{ctx}: converged flag");
        let (ap, bp) = (a.trace.points(), b.trace.points());
        assert_eq!(ap.len(), bp.len(), "{ctx}: trace length");
        for (x, y) in ap.iter().zip(bp) {
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{ctx}: trace value");
            assert_eq!(
                x.best_so_far.to_bits(),
                y.best_so_far.to_bits(),
                "{ctx}: trace best-so-far"
            );
        }
    }

    /// The batch tentpole guarantee: driving a run entirely through
    /// `resume_until_batched` is bit-identical to the scalar path, for every
    /// bundled optimizer, including when the run is split into rungs.
    #[test]
    fn batched_driving_is_bitwise_identical_to_scalar() {
        let f = |x: &[f64]| (x[0] - 0.8).powi(2) + (x[1] + 0.4).powi(2) + (x[0] * x[1]).sin();
        let initial = [0.3, -0.2];
        let budget = 90;
        for opt in resumables() {
            let mut scalar_state = opt.start(&initial, budget);
            let scalar = opt.resume_until(&mut scalar_state, &f, budget);

            let mut sizes = Vec::new();
            let mut batched_state = opt.start(&initial, budget);
            let batched = run_batched(opt.as_ref(), &mut batched_state, &f, budget, &mut sizes);
            assert_results_bitwise_equal(&scalar, &batched, opt.name());

            // Split into rungs at several checkpoints, alternating which leg
            // is batched — the states must stay interchangeable mid-run.
            for k in [1usize, 7, 25, 60] {
                let mut sizes = Vec::new();
                let mut state = opt.start(&initial, budget);
                run_batched(opt.as_ref(), &mut state, &f, k, &mut sizes);
                let finish_scalar = opt.resume_until(&mut state, &f, budget);
                assert_results_bitwise_equal(
                    &scalar,
                    &finish_scalar,
                    &format!("{} batched-then-scalar at {k}", opt.name()),
                );

                let mut state = opt.start(&initial, budget);
                opt.resume_until(&mut state, &f, k);
                let finish_batched = run_batched(opt.as_ref(), &mut state, &f, budget, &mut sizes);
                assert_results_bitwise_equal(
                    &scalar,
                    &finish_batched,
                    &format!("{} scalar-then-batched at {k}", opt.name()),
                );
            }
        }
    }

    /// The optimizers that override the protocol actually submit multi-point
    /// probe sets (the whole point of batching), instead of degenerating to
    /// one point per call.
    #[test]
    fn overriding_optimizers_propose_their_natural_probe_sets() {
        let f = |x: &[f64]| (x[0] - 0.5).powi(2) + x[1] * x[1];
        let initial = [0.4, -0.1];

        let mut sizes = Vec::new();
        let spsa = Spsa::default();
        let mut state = spsa.start(&initial, 40);
        run_batched(&spsa, &mut state, &f, 40, &mut sizes);
        assert!(sizes.contains(&2), "SPSA pairs: {sizes:?}");

        let mut sizes = Vec::new();
        let nm = NelderMead::default();
        let mut state = nm.start(&initial, 40);
        run_batched(&nm, &mut state, &f, 40, &mut sizes);
        assert_eq!(sizes.first(), Some(&3), "NM initial simplex: {sizes:?}");

        let mut sizes = Vec::new();
        let grid = GridSearch::default();
        let mut state = grid.start(&initial, 40);
        run_batched(&grid, &mut state, &f, 40, &mut sizes);
        assert_eq!(sizes, vec![36], "grid population: {sizes:?}");

        let mut sizes = Vec::new();
        let rs = RandomSearch::default();
        let mut state = rs.start(&initial, 40);
        run_batched(&rs, &mut state, &f, 40, &mut sizes);
        assert_eq!(sizes, vec![40], "random population: {sizes:?}");
    }

    #[test]
    fn batch_driver_on_converged_or_met_target_is_a_noop() {
        let f = |x: &[f64]| x[0] * x[0];
        for opt in resumables() {
            let mut state = opt.start(&[0.7], 40);
            let mut sizes = Vec::new();
            let a = run_batched(opt.as_ref(), &mut state, &f, 20, &mut sizes);
            let evals = state.evaluations();
            let b = run_batched(opt.as_ref(), &mut state, &f, evals, &mut sizes);
            let c = run_batched(opt.as_ref(), &mut state, &f, 3, &mut sizes);
            assert_eq!(a.trace.points(), b.trace.points(), "{}", opt.name());
            assert_eq!(b.trace.points(), c.trace.points(), "{}", opt.name());
            assert_eq!(state.evaluations(), evals, "{}", opt.name());
        }
    }

    #[test]
    fn zero_dimensional_batched_runs_converge_immediately() {
        let f = |_: &[f64]| 4.2;
        for opt in resumables() {
            let mut state = opt.start(&[], 10);
            let mut sizes = Vec::new();
            let r = run_batched(opt.as_ref(), &mut state, &f, 10, &mut sizes);
            assert_eq!(r.best_value, 4.2, "{}", opt.name());
            assert!(state.converged(), "{}", opt.name());
            assert_eq!(state.evaluations(), 1, "{}", opt.name());
        }
    }

    #[test]
    #[should_panic(expected = "state")]
    fn mismatched_state_kind_panics_in_propose_batch() {
        let mut state = NelderMead::default().start(&[0.1], 10);
        Spsa::default().propose_batch(&mut state, 10);
    }
}
