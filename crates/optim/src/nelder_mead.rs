//! Nelder–Mead downhill simplex minimizer.
//!
//! Organized as atomic iterations over an explicit [`NelderMeadState`] so a
//! paused run can be [resumed](crate::Resumable) exactly where it stopped.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::resumable::{BatchProposal, OptimizerState, Resumable};
use crate::Optimizer;

/// The Nelder–Mead simplex method with standard reflection / expansion /
/// contraction / shrink coefficients.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (α > 0).
    pub alpha: f64,
    /// Expansion coefficient (γ > 1).
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    pub sigma: f64,
    /// Initial simplex step along each coordinate.
    pub initial_step: f64,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.25,
            tolerance: 1e-8,
        }
    }
}

/// Checkpointed state of a Nelder–Mead run (see [`Resumable`]).
#[derive(Debug, Clone)]
pub struct NelderMeadState {
    pub(crate) initial: Vec<f64>,
    /// Simplex vertices with their values, kept sorted best-first at
    /// iteration boundaries.
    pub(crate) simplex: Vec<(Vec<f64>, f64)>,
    pub(crate) converged: bool,
    pub(crate) trace: OptimizationTrace,
}

impl NelderMeadState {
    pub(crate) fn snapshot(&self) -> OptimizationResult {
        let best = self
            .simplex
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((bp, bv)) => {
                OptimizationResult::from_trace(bp.clone(), *bv, self.converged, self.trace.clone())
            }
            None => OptimizationResult::from_trace(
                self.initial.clone(),
                f64::INFINITY,
                self.converged,
                self.trace.clone(),
            ),
        }
    }
}

impl NelderMead {
    /// One atomic step: full simplex initialization, or one complete
    /// reflect/expand/contract/shrink iteration.
    fn step(&self, s: &mut NelderMeadState, objective: &(dyn Fn(&[f64]) -> f64 + Sync)) {
        let n = s.initial.len();
        let eval = |x: &[f64], trace: &mut OptimizationTrace| {
            let v = objective(x);
            trace.record(v);
            v
        };

        if n == 0 {
            let v = eval(&s.initial, &mut s.trace);
            s.simplex.push((s.initial.clone(), v));
            s.converged = true;
            return;
        }

        // Initial simplex: the start point plus a step along each axis, as
        // one atomic block.
        if s.simplex.len() < n + 1 {
            let v0 = eval(&s.initial, &mut s.trace);
            s.simplex.push((s.initial.clone(), v0));
            for i in 0..n {
                let mut x = s.initial.clone();
                x[i] += if x[i].abs() > 1e-12 {
                    self.initial_step * x[i].abs()
                } else {
                    self.initial_step
                };
                let v = eval(&x, &mut s.trace);
                s.simplex.push((x, v));
            }
            return;
        }

        s.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = s.simplex[0].1;
        let worst = s.simplex[n].1;
        if (worst - best).abs() < self.tolerance {
            s.converged = true;
            return;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (x, _) in s.simplex.iter().take(n) {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }

        let worst_point = s.simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_point)
            .map(|(c, w)| c + self.alpha * (c - w))
            .collect();
        let f_reflect = eval(&reflect, &mut s.trace);

        if f_reflect < s.simplex[0].1 {
            // Try to expand.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + self.gamma * (r - c))
                .collect();
            let f_expand = eval(&expand, &mut s.trace);
            s.simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < s.simplex[n - 1].1 {
            s.simplex[n] = (reflect, f_reflect);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst_point)
                .map(|(c, w)| c + self.rho * (w - c))
                .collect();
            let f_contract = eval(&contract, &mut s.trace);
            if f_contract < s.simplex[n].1 {
                s.simplex[n] = (contract, f_contract);
            } else {
                // Shrink toward the best vertex.
                let best_point = s.simplex[0].0.clone();
                for vertex in s.simplex.iter_mut().skip(1) {
                    let new_x: Vec<f64> = best_point
                        .iter()
                        .zip(&vertex.0)
                        .map(|(b, x)| b + self.sigma * (x - b))
                        .collect();
                    let new_v = eval(&new_x, &mut s.trace);
                    *vertex = (new_x, new_v);
                }
            }
        }
    }
}

impl Resumable for NelderMead {
    fn start(&self, initial: &[f64], _budget_hint: usize) -> OptimizerState {
        OptimizerState::NelderMead(NelderMeadState {
            initial: initial.to_vec(),
            simplex: Vec::new(),
            converged: false,
            trace: OptimizationTrace::new(),
        })
    }

    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        let OptimizerState::NelderMead(s) = state else {
            panic!(
                "NelderMead::resume_until given a {} state",
                state.kind_name()
            );
        };
        while !s.converged && s.trace.len() < target_evaluations {
            self.step(s, objective);
        }
        s.snapshot()
    }

    /// Nelder–Mead's natural probe set is the initial simplex: the start
    /// point plus one axis-step vertex per dimension, all independent of
    /// each other's values. Every later iteration branches on values
    /// mid-step (reflect → expand/contract/shrink), so it stays scalar —
    /// which is the reference path itself, hence bit-identical for free.
    fn propose_batch(
        &self,
        state: &mut OptimizerState,
        target_evaluations: usize,
    ) -> BatchProposal {
        let OptimizerState::NelderMead(s) = state else {
            panic!(
                "NelderMead::propose_batch given a {} state",
                state.kind_name()
            );
        };
        let n = s.initial.len();
        if s.converged || n == 0 {
            // The 0-dimensional step is a single evaluation; let the scalar
            // path handle it (and the converged no-op snapshot).
            return BatchProposal::Scalar;
        }
        if s.simplex.len() < n + 1 {
            if s.trace.len() >= target_evaluations {
                return BatchProposal::Exhausted;
            }
            // Same vertices, in the same order, as the scalar init block
            // (which is atomic and may overshoot the target identically).
            let mut points = Vec::with_capacity(n + 1);
            points.push(s.initial.clone());
            for i in 0..n {
                let mut x = s.initial.clone();
                x[i] += if x[i].abs() > 1e-12 {
                    self.initial_step * x[i].abs()
                } else {
                    self.initial_step
                };
                points.push(x);
            }
            return BatchProposal::Points(points);
        }
        BatchProposal::Scalar
    }

    fn observe_batch(&self, state: &mut OptimizerState, points: &[Vec<f64>], values: &[f64]) {
        let OptimizerState::NelderMead(s) = state else {
            panic!(
                "NelderMead::observe_batch given a {} state",
                state.kind_name()
            );
        };
        assert!(
            s.simplex.is_empty() && points.len() == s.initial.len() + 1,
            "NelderMead::observe_batch expects the initial simplex block"
        );
        for (x, &v) in points.iter().zip(values) {
            s.trace.record(v);
            s.simplex.push((x.clone(), v));
        }
    }
}

impl Optimizer for NelderMead {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let mut state = self.start(initial, max_evaluations);
        self.resume_until(&mut state, objective, max_evaluations.max(1))
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let nm = NelderMead::default();
        let r = nm.minimize(
            &|x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            400,
        );
        assert!((r.best_point[0] - 3.0).abs() < 1e-3, "{:?}", r.best_point);
        assert!((r.best_point[1] + 1.0).abs() < 1e-3, "{:?}", r.best_point);
        assert!(r.best_value < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let nm = NelderMead::default();
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nm.minimize(&rosen, &[-1.2, 1.0], 2000);
        assert!(r.best_value < 1e-4, "rosenbrock value {}", r.best_value);
    }

    #[test]
    fn respects_evaluation_budget() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|x| x[0] * x[0], &[5.0], 10);
        assert!(r.evaluations <= 12, "used {} evaluations", r.evaluations);
    }

    #[test]
    fn handles_zero_dimensional_input() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|_| 7.0, &[], 10);
        assert_eq!(r.best_value, 7.0);
        assert!(r.converged);
    }

    #[test]
    fn converges_flag_set_on_flat_function() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|_| 1.0, &[0.5, 0.5], 500);
        assert!(r.converged);
        assert!(r.evaluations < 500);
    }

    #[test]
    fn minimizes_periodic_objective() {
        // QAOA-like periodic landscape: global minimum of -cos(x)cos(y) at (0, 0).
        let nm = NelderMead::default();
        let r = nm.minimize(&|x| -(x[0].cos() * x[1].cos()), &[0.4, -0.3], 500);
        assert!(r.best_value < -0.999, "value {}", r.best_value);
    }
}
