//! Nelder–Mead downhill simplex minimizer.

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::Optimizer;

/// The Nelder–Mead simplex method with standard reflection / expansion /
/// contraction / shrink coefficients.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (α > 0).
    pub alpha: f64,
    /// Expansion coefficient (γ > 1).
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    pub sigma: f64,
    /// Initial simplex step along each coordinate.
    pub initial_step: f64,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            initial_step: 0.25,
            tolerance: 1e-8,
        }
    }
}

struct Evaluator<'a> {
    objective: &'a (dyn Fn(&[f64]) -> f64 + Sync),
    trace: OptimizationTrace,
    budget: usize,
}

impl<'a> Evaluator<'a> {
    fn eval(&mut self, x: &[f64]) -> f64 {
        let v = (self.objective)(x);
        self.trace.record(v);
        v
    }

    fn exhausted(&self) -> bool {
        self.trace.len() >= self.budget
    }
}

impl Optimizer for NelderMead {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let n = initial.len();
        let mut ev = Evaluator {
            objective,
            trace: OptimizationTrace::new(),
            budget: max_evaluations.max(1),
        };

        if n == 0 {
            let value = ev.eval(initial);
            return OptimizationResult::from_trace(initial.to_vec(), value, true, ev.trace);
        }

        // Initial simplex: the start point plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let v0 = ev.eval(initial);
        simplex.push((initial.to_vec(), v0));
        for i in 0..n {
            if ev.exhausted() {
                break;
            }
            let mut x = initial.to_vec();
            x[i] += if x[i].abs() > 1e-12 {
                self.initial_step * x[i].abs()
            } else {
                self.initial_step
            };
            let v = ev.eval(&x);
            simplex.push((x, v));
        }
        // If the budget died during initialization, return the best vertex.
        if simplex.len() < n + 1 {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let (bp, bv) = simplex[0].clone();
            return OptimizationResult::from_trace(bp, bv, false, ev.trace);
        }

        let mut converged = false;
        while !ev.exhausted() {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let best = simplex[0].1;
            let worst = simplex[n].1;
            if (worst - best).abs() < self.tolerance {
                converged = true;
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for (x, _) in simplex.iter().take(n) {
                for (c, xi) in centroid.iter_mut().zip(x) {
                    *c += xi / n as f64;
                }
            }

            let worst_point = simplex[n].0.clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst_point)
                .map(|(c, w)| c + self.alpha * (c - w))
                .collect();
            let f_reflect = ev.eval(&reflect);

            if f_reflect < simplex[0].1 {
                // Try to expand.
                if ev.exhausted() {
                    simplex[n] = (reflect, f_reflect);
                    break;
                }
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + self.gamma * (r - c))
                    .collect();
                let f_expand = ev.eval(&expand);
                simplex[n] = if f_expand < f_reflect {
                    (expand, f_expand)
                } else {
                    (reflect, f_reflect)
                };
            } else if f_reflect < simplex[n - 1].1 {
                simplex[n] = (reflect, f_reflect);
            } else {
                // Contraction.
                if ev.exhausted() {
                    break;
                }
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(&worst_point)
                    .map(|(c, w)| c + self.rho * (w - c))
                    .collect();
                let f_contract = ev.eval(&contract);
                if f_contract < simplex[n].1 {
                    simplex[n] = (contract, f_contract);
                } else {
                    // Shrink toward the best vertex.
                    let best_point = simplex[0].0.clone();
                    for vertex in simplex.iter_mut().skip(1) {
                        if ev.exhausted() {
                            break;
                        }
                        let new_x: Vec<f64> = best_point
                            .iter()
                            .zip(&vertex.0)
                            .map(|(b, x)| b + self.sigma * (x - b))
                            .collect();
                        let new_v = ev.eval(&new_x);
                        *vertex = (new_x, new_v);
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let (best_point, best_value) = simplex[0].clone();
        OptimizationResult::from_trace(best_point, best_value, converged, ev.trace)
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let nm = NelderMead::default();
        let r = nm.minimize(
            &|x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            400,
        );
        assert!((r.best_point[0] - 3.0).abs() < 1e-3, "{:?}", r.best_point);
        assert!((r.best_point[1] + 1.0).abs() < 1e-3, "{:?}", r.best_point);
        assert!(r.best_value < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let nm = NelderMead::default();
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nm.minimize(&rosen, &[-1.2, 1.0], 2000);
        assert!(r.best_value < 1e-4, "rosenbrock value {}", r.best_value);
    }

    #[test]
    fn respects_evaluation_budget() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|x| x[0] * x[0], &[5.0], 10);
        assert!(r.evaluations <= 12, "used {} evaluations", r.evaluations);
    }

    #[test]
    fn handles_zero_dimensional_input() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|_| 7.0, &[], 10);
        assert_eq!(r.best_value, 7.0);
        assert!(r.converged);
    }

    #[test]
    fn converges_flag_set_on_flat_function() {
        let nm = NelderMead::default();
        let r = nm.minimize(&|_| 1.0, &[0.5, 0.5], 500);
        assert!(r.converged);
        assert!(r.evaluations < 500);
    }

    #[test]
    fn minimizes_periodic_objective() {
        // QAOA-like periodic landscape: global minimum of -cos(x)cos(y) at (0, 0).
        let nm = NelderMead::default();
        let r = nm.minimize(&|x| -(x[0].cos() * x[1].cos()), &[0.4, -0.3], 500);
        assert!(r.best_value < -0.999, "value {}", r.best_value);
    }
}
