//! Optimization results and evaluation traces.

use serde::{Deserialize, Serialize};

/// One recorded objective evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Evaluation index (0-based).
    pub evaluation: usize,
    /// Objective value at this evaluation.
    pub value: f64,
    /// Best objective value seen so far (monotone non-increasing).
    pub best_so_far: f64,
}

/// The sequence of objective evaluations produced during a minimization run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OptimizationTrace {
    points: Vec<TracePoint>,
}

impl OptimizationTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an evaluation.
    pub fn record(&mut self, value: f64) {
        let best_so_far = match self.points.last() {
            Some(last) => last.best_so_far.min(value),
            None => value,
        };
        self.points.push(TracePoint {
            evaluation: self.points.len(),
            value,
            best_so_far,
        });
    }

    /// Number of recorded evaluations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All recorded points.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Best value observed so far (None when empty).
    pub fn best(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_so_far)
    }

    /// The best-so-far curve as a plain vector (useful for convergence plots).
    pub fn best_curve(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.best_so_far).collect()
    }
}

/// Outcome of a minimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// The best point found.
    pub best_point: Vec<f64>,
    /// Objective value at `best_point`.
    pub best_value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Whether the optimizer terminated because it converged (rather than
    /// exhausting its budget).
    pub converged: bool,
    /// The evaluation trace.
    pub trace: OptimizationTrace,
}

impl OptimizationResult {
    /// Construct a result from its parts, deriving `evaluations` from the
    /// trace length.
    pub fn from_trace(
        best_point: Vec<f64>,
        best_value: f64,
        converged: bool,
        trace: OptimizationTrace,
    ) -> Self {
        OptimizationResult {
            best_point,
            best_value,
            evaluations: trace.len(),
            converged,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_tracks_best_so_far() {
        let mut t = OptimizationTrace::new();
        t.record(5.0);
        t.record(3.0);
        t.record(4.0);
        t.record(1.0);
        assert_eq!(t.len(), 4);
        assert_eq!(t.best(), Some(1.0));
        assert_eq!(t.best_curve(), vec![5.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn best_curve_is_monotone() {
        let mut t = OptimizationTrace::new();
        for v in [9.0, 7.5, 8.0, 2.0, 2.5, 1.0] {
            t.record(v);
        }
        let curve = t.best_curve();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn empty_trace_has_no_best() {
        let t = OptimizationTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.best(), None);
    }

    #[test]
    fn result_from_trace_counts_evaluations() {
        let mut t = OptimizationTrace::new();
        t.record(1.0);
        t.record(0.5);
        let r = OptimizationResult::from_trace(vec![0.0], 0.5, true, t);
        assert_eq!(r.evaluations, 2);
        assert!(r.converged);
    }
}
