//! Uniform random search within a box around the start point.
//!
//! Random search is both a baseline optimizer for the ablation benches and a
//! nod to the paper's observation that random search is "a strong baseline in
//! neural architecture search" (Li & Talwalkar, 2020).
//!
//! The run is a sequence of one-evaluation steps over an explicit
//! [`RandomSearchState`] (RNG stream plus incumbent), so it is trivially
//! [resumable](crate::Resumable).

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::resumable::{BatchProposal, OptimizerState, Resumable};
use crate::Optimizer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Uniform random sampling of points inside `initial ± half_width`.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Half-width of the sampling box along every coordinate.
    pub half_width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            half_width: std::f64::consts::PI,
            seed: 0xAB5,
        }
    }
}

/// Checkpointed state of a random-search run (see [`Resumable`]).
#[derive(Debug, Clone)]
pub struct RandomSearchState {
    /// Center of the sampling box.
    pub(crate) center: Vec<f64>,
    pub(crate) best_point: Vec<f64>,
    pub(crate) best_value: f64,
    pub(crate) started: bool,
    pub(crate) converged: bool,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) trace: OptimizationTrace,
}

impl RandomSearchState {
    pub(crate) fn snapshot(&self) -> OptimizationResult {
        OptimizationResult::from_trace(
            self.best_point.clone(),
            self.best_value,
            self.converged,
            self.trace.clone(),
        )
    }
}

impl Resumable for RandomSearch {
    fn start(&self, initial: &[f64], _budget_hint: usize) -> OptimizerState {
        OptimizerState::RandomSearch(RandomSearchState {
            center: initial.to_vec(),
            best_point: initial.to_vec(),
            best_value: f64::INFINITY,
            started: false,
            converged: false,
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            trace: OptimizationTrace::new(),
        })
    }

    fn resume_until(
        &self,
        state: &mut OptimizerState,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        target_evaluations: usize,
    ) -> OptimizationResult {
        let OptimizerState::RandomSearch(s) = state else {
            panic!(
                "RandomSearch::resume_until given a {} state",
                state.kind_name()
            );
        };
        if !s.started && target_evaluations > 0 {
            let v = objective(&s.center);
            s.trace.record(v);
            s.best_value = v;
            s.best_point = s.center.clone();
            s.started = true;
            if s.center.is_empty() {
                s.converged = true;
            }
        }
        while !s.converged && s.trace.len() < target_evaluations {
            let candidate: Vec<f64> = s
                .center
                .iter()
                .map(|&x| x + s.rng.gen_range(-self.half_width..=self.half_width))
                .collect();
            let value = objective(&candidate);
            s.trace.record(value);
            if value < s.best_value {
                s.best_value = value;
                s.best_point = candidate;
            }
        }
        s.snapshot()
    }

    /// Random search's probe set is its whole remaining population: the
    /// candidate draws never depend on objective values, so the RNG stream
    /// is identical whether points are drawn one at a time or all up front.
    /// The initial center evaluation rides along as the first point of the
    /// first batch (`started` distinguishes it in `observe_batch`).
    fn propose_batch(
        &self,
        state: &mut OptimizerState,
        target_evaluations: usize,
    ) -> BatchProposal {
        let OptimizerState::RandomSearch(s) = state else {
            panic!(
                "RandomSearch::propose_batch given a {} state",
                state.kind_name()
            );
        };
        if s.converged {
            return BatchProposal::Exhausted;
        }
        let mut points = Vec::new();
        if !s.started && target_evaluations > 0 {
            points.push(s.center.clone());
        }
        if !s.center.is_empty() {
            let remaining = target_evaluations.saturating_sub(s.trace.len() + points.len());
            for _ in 0..remaining {
                let candidate: Vec<f64> = s
                    .center
                    .iter()
                    .map(|&x| x + s.rng.gen_range(-self.half_width..=self.half_width))
                    .collect();
                points.push(candidate);
            }
        }
        if points.is_empty() {
            return BatchProposal::Exhausted;
        }
        BatchProposal::Points(points)
    }

    fn observe_batch(&self, state: &mut OptimizerState, points: &[Vec<f64>], values: &[f64]) {
        let OptimizerState::RandomSearch(s) = state else {
            panic!(
                "RandomSearch::observe_batch given a {} state",
                state.kind_name()
            );
        };
        let mut pairs = points.iter().zip(values);
        if !s.started {
            let (_, &v) = pairs.next().expect("init point is first in the batch");
            s.trace.record(v);
            s.best_value = v;
            s.best_point = s.center.clone();
            s.started = true;
            if s.center.is_empty() {
                s.converged = true;
            }
        }
        for (candidate, &value) in pairs {
            s.trace.record(value);
            if value < s.best_value {
                s.best_value = value;
                s.best_point = candidate.clone();
            }
        }
    }
}

impl Optimizer for RandomSearch {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let mut state = self.start(initial, max_evaluations);
        self.resume_until(&mut state, objective, max_evaluations.max(1))
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_reasonable_minimum_of_1d_quadratic() {
        let rs = RandomSearch {
            half_width: 2.0,
            seed: 3,
        };
        let r = rs.minimize(&|x| x[0] * x[0], &[0.0], 500);
        assert!(r.best_value < 0.01);
    }

    #[test]
    fn uses_exactly_the_budget() {
        let rs = RandomSearch::default();
        let r = rs.minimize(&|x| x[0], &[0.0], 37);
        assert_eq!(r.evaluations, 37);
    }

    #[test]
    fn never_returns_worse_than_initial() {
        let rs = RandomSearch::default();
        let f = |x: &[f64]| (x[0] - 10.0).powi(2);
        let initial_value = f(&[0.0]);
        let r = rs.minimize(&f, &[0.0], 20);
        assert!(r.best_value <= initial_value);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x[0].cos() + x[1].sin();
        let a = RandomSearch {
            half_width: 1.0,
            seed: 9,
        }
        .minimize(&f, &[0.0, 0.0], 50);
        let b = RandomSearch {
            half_width: 1.0,
            seed: 9,
        }
        .minimize(&f, &[0.0, 0.0], 50);
        assert_eq!(a.best_point, b.best_point);
    }
}
