//! Uniform random search within a box around the start point.
//!
//! Random search is both a baseline optimizer for the ablation benches and a
//! nod to the paper's observation that random search is "a strong baseline in
//! neural architecture search" (Li & Talwalkar, 2020).

use crate::result::{OptimizationResult, OptimizationTrace};
use crate::Optimizer;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Uniform random sampling of points inside `initial ± half_width`.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Half-width of the sampling box along every coordinate.
    pub half_width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            half_width: std::f64::consts::PI,
            seed: 0xAB5,
        }
    }
}

impl Optimizer for RandomSearch {
    fn minimize(
        &self,
        objective: &(dyn Fn(&[f64]) -> f64 + Sync),
        initial: &[f64],
        max_evaluations: usize,
    ) -> OptimizationResult {
        let budget = max_evaluations.max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut trace = OptimizationTrace::new();

        let mut best_point = initial.to_vec();
        let mut best_value = objective(initial);
        trace.record(best_value);

        for _ in 1..budget {
            let candidate: Vec<f64> = initial
                .iter()
                .map(|&x| x + rng.gen_range(-self.half_width..=self.half_width))
                .collect();
            let value = objective(&candidate);
            trace.record(value);
            if value < best_value {
                best_value = value;
                best_point = candidate;
            }
        }
        OptimizationResult::from_trace(best_point, best_value, false, trace)
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_reasonable_minimum_of_1d_quadratic() {
        let rs = RandomSearch {
            half_width: 2.0,
            seed: 3,
        };
        let r = rs.minimize(&|x| x[0] * x[0], &[0.0], 500);
        assert!(r.best_value < 0.01);
    }

    #[test]
    fn uses_exactly_the_budget() {
        let rs = RandomSearch::default();
        let r = rs.minimize(&|x| x[0], &[0.0], 37);
        assert_eq!(r.evaluations, 37);
    }

    #[test]
    fn never_returns_worse_than_initial() {
        let rs = RandomSearch::default();
        let f = |x: &[f64]| (x[0] - 10.0).powi(2);
        let initial_value = f(&[0.0]);
        let r = rs.minimize(&f, &[0.0], 20);
        assert!(r.best_value <= initial_value);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x[0].cos() + x[1].sin();
        let a = RandomSearch {
            half_width: 1.0,
            seed: 9,
        }
        .minimize(&f, &[0.0, 0.0], 50);
        let b = RandomSearch {
            half_width: 1.0,
            seed: 9,
        }
        .minimize(&f, &[0.0, 0.0], 50);
        assert_eq!(a.best_point, b.best_point);
    }
}
