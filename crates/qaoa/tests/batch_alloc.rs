//! Allocation-count assertions for the batched energy path (ISSUE 6,
//! satellite 2).
//!
//! `CompiledEnergy::energy_batch_in` promises to reuse the caller's
//! [`BatchScratch`] buffers: after a warm-up call, the only allocation a call
//! may make is the returned `Vec<f64>` of energies (plus the tolerance noted
//! below). A counting global allocator pins that contract so buffer reuse
//! cannot silently regress into per-call `2^n` allocations.

use graphs::Graph;
use qaoa::ansatz::QaoaAnsatz;
use qaoa::energy::EnergyEvaluator;
use qaoa::mixer::Mixer;
use qaoa::{Backend, BatchScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// System allocator wrapper that counts allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting armed; returns (allocations, bytes).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, usize, R) {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    let r = f();
    ARMED.store(false, Ordering::Relaxed);
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
        r,
    )
}

#[test]
fn energy_batch_in_reuses_scratch_buffers_after_warmup() {
    // Below the rayon threshold so the sweep stays on this thread: counting
    // must see every allocation the evaluation makes.
    let n = 8;
    let graph = Graph::connected_erdos_renyi(n, 0.5, 7, 50);
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    let compiled = eval.compile(&ansatz).unwrap();

    let batch = 8;
    let points: Vec<Vec<f64>> = (0..batch)
        .map(|i| {
            (0..4)
                .map(|j| 0.1 + 0.05 * i as f64 + 0.02 * j as f64)
                .collect()
        })
        .collect();

    let mut scratch = BatchScratch::new();
    // Warm-up: builds the 2^n × tile batch buffer, the scalar state (if any
    // singleton tile ran), and sizes the staging vectors.
    let warm = compiled.energy_batch_in(&points, &mut scratch).unwrap();

    let (allocs, bytes, result) =
        count_allocs(|| compiled.energy_batch_in(&points, &mut scratch).unwrap());
    assert_eq!(result.len(), batch);
    for (a, b) in warm.iter().zip(&result) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm vs counted run");
    }

    // Budget: the returned energies Vec, plus a small constant for the
    // per-sweep factor staging (distinct phase values per angle, O(batch)
    // each, nowhere near the 2^n state). A regression to per-call state
    // allocation would cost 2^n * 16 bytes per tile and blow both bounds.
    let state_bytes = (1usize << n) * 16; // 2^n Complex64 amplitudes
    assert!(allocs <= 24, "energy_batch_in made {allocs} allocations");
    assert!(
        bytes < state_bytes,
        "energy_batch_in allocated {bytes} bytes (>= one 2^{n} state of {state_bytes})"
    );
}

#[test]
fn warm_scalar_energy_flat_in_stays_allocation_free() {
    // The pre-existing scalar contract, pinned here with the same counter:
    // an external-scratch evaluation allocates nothing at all.
    let n = 8;
    let graph = Graph::connected_erdos_renyi(n, 0.5, 7, 50);
    let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
    let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
    let compiled = eval.compile(&ansatz).unwrap();
    let params = [0.3, -0.2, 0.5, 0.1];

    let mut buf = statevec::StateVector::zero_state(n).unwrap();
    let warm = compiled.energy_flat_in(&params, &mut buf).unwrap();
    let (allocs, _bytes, e) = count_allocs(|| compiled.energy_flat_in(&params, &mut buf).unwrap());
    assert_eq!(warm.to_bits(), e.to_bits());
    assert_eq!(allocs, 0, "energy_flat_in allocated after warm-up");
}
