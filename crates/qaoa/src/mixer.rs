//! Mixer layers: the design space of the architecture search.
//!
//! A mixer is a short sequence of single-qubit gates applied to **every**
//! node of the graph. Parameterized gates share a single variational angle
//! `β` per QAOA layer and are applied as `G(2β)` — matching the paper, where
//! the discovered winner is `RX(2β)` followed by `RY(2β)` on every qubit
//! (Fig. 6) and the baseline is the standard `RX(2β)` transverse-field mixer.

use crate::error::QaoaError;
use qcircuit::{Circuit, Gate, Parameter};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mixer layer: an ordered sequence of single-qubit gates applied to every
/// qubit, sharing one `β` parameter per QAOA layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mixer {
    gates: Vec<Gate>,
}

impl Mixer {
    /// A mixer from an ordered gate sequence. Fails on an empty sequence or
    /// on multi-qubit gates.
    pub fn new(gates: Vec<Gate>) -> Result<Mixer, QaoaError> {
        if gates.is_empty() {
            return Err(QaoaError::EmptyMixer);
        }
        for g in &gates {
            if g.arity() != 1 {
                return Err(QaoaError::Backend {
                    message: format!("mixer gates must be single-qubit, got {g}"),
                });
            }
        }
        Ok(Mixer { gates })
    }

    /// The standard QAOA transverse-field mixer `RX(2β)` — the baseline of
    /// Figs. 8 and 9.
    pub fn baseline() -> Mixer {
        Mixer {
            gates: vec![Gate::RX],
        }
    }

    /// The mixer discovered by the paper's search: `RX(2β)` followed by
    /// `RY(2β)` on every qubit (Fig. 6), labelled "qnas" in Figs. 8–9.
    pub fn qnas() -> Mixer {
        Mixer {
            gates: vec![Gate::RX, Gate::RY],
        }
    }

    /// The candidate mixers plotted in Fig. 7, in the paper's order:
    /// `('ry','p')`, `('rx','h')`, `('h','p')`, `('rx','ry')`.
    pub fn fig7_candidates() -> Vec<Mixer> {
        vec![
            Mixer {
                gates: vec![Gate::RY, Gate::P],
            },
            Mixer {
                gates: vec![Gate::RX, Gate::H],
            },
            Mixer {
                gates: vec![Gate::H, Gate::P],
            },
            Mixer {
                gates: vec![Gate::RX, Gate::RY],
            },
        ]
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates applied per qubit.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the mixer is empty (never true for constructed mixers).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of *parameterized* gates per qubit (the rest are fixed
    /// Cliffords like `H`).
    pub fn parameterized_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_parameterized()).count()
    }

    /// Whether the mixer can move population between computational basis
    /// states (i.e. contains at least one non-diagonal gate). A purely
    /// diagonal "mixer" cannot change the Max-Cut energy of `|+⟩^⊗n`.
    pub fn is_mixing(&self) -> bool {
        self.gates.iter().any(|g| !g.is_diagonal())
    }

    /// Append this mixer's gates for every qubit to `circuit`, using the free
    /// parameter `beta_name` with the paper's `2β` convention.
    pub fn append_layer(&self, circuit: &mut Circuit, beta_name: &str) {
        let n = circuit.num_qubits();
        for &gate in &self.gates {
            for q in 0..n {
                let param = if gate.is_parameterized() {
                    Parameter::free(beta_name, 2.0)
                } else {
                    Parameter::None
                };
                circuit.push(gate, &[q], param);
            }
        }
    }

    /// The label used in the paper's figures, e.g. `('rx', 'ry')`.
    pub fn label(&self) -> String {
        let names: Vec<String> = self
            .gates
            .iter()
            .map(|g| format!("'{}'", g.mnemonic()))
            .collect();
        format!("({})", names.join(", "))
    }
}

impl fmt::Display for Mixer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_rx() {
        let m = Mixer::baseline();
        assert_eq!(m.gates(), &[Gate::RX]);
        assert_eq!(m.label(), "('rx')");
        assert!(m.is_mixing());
    }

    #[test]
    fn qnas_is_rx_ry() {
        let m = Mixer::qnas();
        assert_eq!(m.gates(), &[Gate::RX, Gate::RY]);
        assert_eq!(m.parameterized_gate_count(), 2);
    }

    #[test]
    fn fig7_candidates_match_paper_labels() {
        let labels: Vec<String> = Mixer::fig7_candidates().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "('ry', 'p')".to_string(),
                "('rx', 'h')".to_string(),
                "('h', 'p')".to_string(),
                "('rx', 'ry')".to_string(),
            ]
        );
    }

    #[test]
    fn empty_mixer_is_rejected() {
        assert!(matches!(Mixer::new(vec![]), Err(QaoaError::EmptyMixer)));
    }

    #[test]
    fn two_qubit_gates_are_rejected() {
        assert!(Mixer::new(vec![Gate::CX]).is_err());
    }

    #[test]
    fn diagonal_only_mixer_is_not_mixing() {
        let m = Mixer::new(vec![Gate::RZ, Gate::P]).unwrap();
        assert!(!m.is_mixing());
        let m2 = Mixer::new(vec![Gate::RZ, Gate::RX]).unwrap();
        assert!(m2.is_mixing());
    }

    #[test]
    fn append_layer_shares_beta_with_multiplier_two() {
        let mut c = Circuit::new(3);
        Mixer::qnas().append_layer(&mut c, "beta_0");
        // 2 gates × 3 qubits.
        assert_eq!(c.len(), 6);
        assert_eq!(c.free_parameters(), vec!["beta_0".to_string()]);
        for inst in c.instructions() {
            match &inst.parameter {
                Parameter::Free { name, multiplier } => {
                    assert_eq!(name, "beta_0");
                    assert_eq!(*multiplier, 2.0);
                }
                other => panic!("unexpected parameter {other:?}"),
            }
        }
    }

    #[test]
    fn append_layer_with_clifford_gates_has_no_parameter() {
        let mut c = Circuit::new(2);
        Mixer::new(vec![Gate::H, Gate::RX])
            .unwrap()
            .append_layer(&mut c, "b");
        let unparameterized = c
            .instructions()
            .iter()
            .filter(|i| i.parameter.is_none())
            .count();
        assert_eq!(unparameterized, 2); // the two H gates
    }
}
