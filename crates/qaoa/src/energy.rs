//! Energy evaluation, variational training and approximation ratios.
//!
//! This is the computational heart of the QArchSearch **Evaluator** module:
//! given a cost [`Problem`] on a graph and a candidate ansatz, maximize
//! ⟨γ,β|C|γ,β⟩ with a classical optimizer (COBYLA with 200 iterations in
//! the paper) and report the resulting energy and approximation ratio
//! (Eq. 3, formed per the problem's [`graphs::RatioConvention`]).

use crate::ansatz::QaoaAnsatz;
use crate::backend::Backend;
use crate::error::QaoaError;
use graphs::{ClassicalSolution, Graph, Problem, SolutionQuality};
use optim::{OptimizationResult, OptimizationTrace, Optimizer, OptimizerState, Resumable};
use serde::{Deserialize, Serialize};
use statevec::{BatchStateVector, CompiledProgram, StateVector};
use std::sync::{Arc, Mutex, OnceLock};

/// Result of training one ansatz on one problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedCircuit {
    /// Best (maximal) cost expectation found.
    pub energy: f64,
    /// Optimal γ angles, one per layer.
    pub gammas: Vec<f64>,
    /// Optimal β angles, one per layer.
    pub betas: Vec<f64>,
    /// Number of objective evaluations used.
    pub evaluations: usize,
    /// Approximation ratio per the problem's convention (for Max-Cut:
    /// r = energy / C_classical).
    pub approx_ratio: f64,
    /// Classical reference value used in the ratio.
    pub classical_optimum: f64,
    /// Whether the classical reference is exact or heuristic.
    pub classical_quality: SolutionQuality,
}

/// Evaluates and trains QAOA ansätze on one problem instance with a chosen
/// backend.
#[derive(Debug, Clone)]
pub struct EnergyEvaluator {
    graph: Graph,
    problem: Problem,
    backend: Backend,
    /// Classical reference bracket (best/worst/quality), computed once.
    classical: ClassicalSolution,
    /// The full `2^n` problem diagonal, built lazily on the first compiled
    /// fast-path use and shared by every candidate ansatz on this instance.
    diag: OnceLock<Arc<Vec<f64>>>,
}

impl EnergyEvaluator {
    /// Build a Max-Cut evaluator for `graph` (the paper's configuration);
    /// the classical reference is computed once (exactly for paper-scale
    /// instances). Shorthand for [`EnergyEvaluator::for_problem`] with
    /// [`Problem::max_cut`].
    pub fn new(graph: &Graph, backend: Backend) -> EnergyEvaluator {
        Self::for_problem(graph, Problem::max_cut(graph), backend)
            .expect("Max-Cut problem matches its graph")
    }

    /// Build an evaluator for an arbitrary diagonal cost [`Problem`] on
    /// `graph`. The classical reference bracket is computed once (exact
    /// enumeration when feasible, greedy + randomized local search beyond
    /// it — see [`Problem::classical_solution`]).
    pub fn for_problem(
        graph: &Graph,
        problem: Problem,
        backend: Backend,
    ) -> Result<EnergyEvaluator, QaoaError> {
        if problem.num_spins() != graph.num_nodes() {
            return Err(QaoaError::ProblemSizeMismatch {
                name: problem.name().to_string(),
                problem_spins: problem.num_spins(),
                graph_nodes: graph.num_nodes(),
            });
        }
        let classical = problem.classical_solution();
        Ok(EnergyEvaluator {
            graph: graph.clone(),
            problem,
            backend,
            classical,
            diag: OnceLock::new(),
        })
    }

    /// The cached problem diagonal `C(z)` for every basis state, built on
    /// first use (only the compiled state-vector fast path needs it).
    fn problem_diag(&self) -> Arc<Vec<f64>> {
        Arc::clone(
            self.diag
                .get_or_init(|| Arc::new(statevec::expectation::problem_diagonal(&self.problem))),
        )
    }

    /// The graph this evaluator targets.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The cost problem this evaluator trains against.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The classical reference value `C_classical` of Eq. 3 (the best
    /// classically-known cost).
    pub fn classical_optimum(&self) -> f64 {
        self.classical.best
    }

    /// The full classical reference bracket (best, worst, exact/heuristic).
    pub fn classical_solution(&self) -> &ClassicalSolution {
        &self.classical
    }

    /// The backend used for expectation values.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// ⟨C⟩ for explicit angles.
    pub fn energy(
        &self,
        ansatz: &QaoaAnsatz,
        gammas: &[f64],
        betas: &[f64],
    ) -> Result<f64, QaoaError> {
        let circuit = ansatz.bind(gammas, betas)?;
        self.backend.expectation(&circuit, &self.problem)
    }

    /// ⟨C⟩ for a flat parameter vector `[γ…, β…]`.
    pub fn energy_flat(&self, ansatz: &QaoaAnsatz, params: &[f64]) -> Result<f64, QaoaError> {
        let circuit = ansatz.bind_flat(params)?;
        self.backend.expectation(&circuit, &self.problem)
    }

    /// Compile `ansatz` into the allocation-free fast path for this
    /// evaluator's graph (state-vector backend only).
    ///
    /// The returned [`CompiledEnergy`] holds the lowered circuit, the cached
    /// problem diagonal and a reusable scratch state, so each
    /// [`CompiledEnergy::energy_flat`] call performs zero heap allocation.
    /// [`EnergyEvaluator::train`] and its variants build this automatically;
    /// it is public so benches and external drivers can time the fast path
    /// directly.
    pub fn compile(&self, ansatz: &QaoaAnsatz) -> Result<CompiledEnergy, QaoaError> {
        if self.backend != Backend::StateVector {
            return Err(QaoaError::Backend {
                message: format!(
                    "compiled fast path requires the state-vector backend, got {}",
                    self.backend
                ),
            });
        }
        CompiledEnergy::build(self, ansatz)
    }

    /// The compiled objective when it applies to this backend, `None`
    /// otherwise (callers then fall back to the bind-per-call path).
    fn fast_path(&self, ansatz: &QaoaAnsatz) -> Option<CompiledEnergy> {
        if self.backend == Backend::StateVector {
            CompiledEnergy::build(self, ansatz).ok()
        } else {
            None
        }
    }

    /// Approximation ratio of a given energy (Eq. 3), formed per the
    /// problem's [`graphs::RatioConvention`]. Zero when the classical
    /// bracket is degenerate.
    pub fn approx_ratio(&self, energy: f64) -> f64 {
        self.problem.approx_ratio(energy, &self.classical)
    }

    /// Train the ansatz: maximize ⟨C⟩ over the `2p` angles using `optimizer`
    /// with `budget` objective evaluations (the paper uses COBYLA with 200
    /// steps), starting from the paper-style small-angle initial point.
    pub fn train(
        &self,
        ansatz: &QaoaAnsatz,
        optimizer: &dyn Optimizer,
        budget: usize,
    ) -> Result<TrainedCircuit, QaoaError> {
        if self.problem.terms().is_empty() {
            return Err(QaoaError::EmptyGraph);
        }
        let p = ansatz.depth();
        // Small non-zero initial angles; γ and β start on different scales,
        // a common heuristic for QAOA warm starts.
        let initial = ansatz.default_initial_flat();

        if p == 0 {
            // Nothing to optimize: the plus state cuts half the weight.
            let energy = self.energy(ansatz, &[], &[])?;
            return Ok(TrainedCircuit {
                energy,
                gammas: vec![],
                betas: vec![],
                evaluations: 1,
                approx_ratio: self.approx_ratio(energy),
                classical_optimum: self.classical.best,
                classical_quality: self.classical.quality,
            });
        }

        // Compile the ansatz once: all optimizer iterations then run through
        // the allocation-free fast path (state-vector backend only; other
        // backends keep the bind-per-call route).
        let fast = self.fast_path(ansatz);
        // The optimizer minimizes, so negate the energy. Errors inside the
        // objective cannot propagate through the closure; they are mapped to
        // +inf so the optimizer avoids that region, and re-checked afterwards.
        let objective = |params: &[f64]| -> f64 {
            let energy = match &fast {
                Some(compiled) => compiled.energy_flat(params),
                None => self.energy_flat(ansatz, params),
            };
            match energy {
                Ok(e) => -e,
                Err(_) => f64::INFINITY,
            }
        };
        let result = optimizer.minimize(&objective, &initial, budget);

        let best_energy = -result.best_value;
        if !best_energy.is_finite() {
            return Err(QaoaError::Backend {
                message: "optimizer failed to produce a finite energy".to_string(),
            });
        }
        let (gammas, betas) = result.best_point.split_at(p);
        Ok(TrainedCircuit {
            energy: best_energy,
            gammas: gammas.to_vec(),
            betas: betas.to_vec(),
            evaluations: result.evaluations,
            approx_ratio: self.approx_ratio(best_energy),
            classical_optimum: self.classical.best,
            classical_quality: self.classical.quality,
        })
    }

    /// Multi-start training: run [`EnergyEvaluator::train`]-style optimization
    /// from several deterministic starting points and keep the best result.
    ///
    /// The evaluation budget is split evenly across the starts. The starting
    /// points are (1) the small-angle warm start used by [`train`](Self::train),
    /// (2) the best p = 1 angles from the closed-form grid of
    /// [`crate::analytic::best_p1_angles_by_grid`] replicated across layers,
    /// and (3) a mid-range point — a cheap stand-in for the multi-start /
    /// interpolation heuristics commonly used to train deeper QAOA.
    pub fn train_multistart(
        &self,
        ansatz: &QaoaAnsatz,
        optimizer: &dyn Optimizer,
        budget: usize,
        restarts: usize,
    ) -> Result<TrainedCircuit, QaoaError> {
        if self.problem.terms().is_empty() {
            return Err(QaoaError::EmptyGraph);
        }
        let p = ansatz.depth();
        if p == 0 || restarts <= 1 {
            return self.train(ansatz, optimizer, budget);
        }
        let per_start_budget = (budget / restarts).max(1);

        // Candidate starting points, flat layout [γ…, β…].
        let mut starts: Vec<Vec<f64>> = Vec::new();
        starts.push(ansatz.default_initial_flat());
        let (g1, b1, _) = crate::analytic::best_p1_angles_by_grid(&self.graph, 16);
        let mut analytic_start = vec![0.0; 2 * p];
        for k in 0..p {
            // Ramp the p = 1 optimum across layers (small early, larger late
            // for γ; the reverse for β), a standard QAOA initialization.
            let frac = (k as f64 + 1.0) / p as f64;
            analytic_start[k] = g1 * frac;
            analytic_start[p + k] = b1 * (1.0 - frac) + 0.1 * frac;
        }
        starts.push(analytic_start);
        starts.push(vec![0.5; 2 * p]);
        starts.truncate(restarts.max(1));

        let fast = self.fast_path(ansatz);
        let objective = |params: &[f64]| -> f64 {
            let energy = match &fast {
                Some(compiled) => compiled.energy_flat(params),
                None => self.energy_flat(ansatz, params),
            };
            match energy {
                Ok(e) => -e,
                Err(_) => f64::INFINITY,
            }
        };

        let mut best: Option<TrainedCircuit> = None;
        let mut total_evaluations = 0usize;
        for start in &starts {
            let result = optimizer.minimize(&objective, start, per_start_budget);
            total_evaluations += result.evaluations;
            let energy = -result.best_value;
            if !energy.is_finite() {
                continue;
            }
            let better = best.as_ref().map(|b| energy > b.energy).unwrap_or(true);
            if better {
                let (gammas, betas) = result.best_point.split_at(p);
                best = Some(TrainedCircuit {
                    energy,
                    gammas: gammas.to_vec(),
                    betas: betas.to_vec(),
                    evaluations: 0, // filled below with the cumulative count
                    approx_ratio: self.approx_ratio(energy),
                    classical_optimum: self.classical.best,
                    classical_quality: self.classical.quality,
                });
            }
        }
        let mut best = best.ok_or_else(|| QaoaError::Backend {
            message: "no restart produced a finite energy".to_string(),
        })?;
        best.evaluations = total_evaluations;
        Ok(best)
    }

    /// Train and also return the raw optimization trace (negated energies),
    /// useful for convergence plots.
    pub fn train_with_trace(
        &self,
        ansatz: &QaoaAnsatz,
        optimizer: &dyn Optimizer,
        budget: usize,
    ) -> Result<(TrainedCircuit, OptimizationTrace), QaoaError> {
        if self.problem.terms().is_empty() {
            return Err(QaoaError::EmptyGraph);
        }
        let p = ansatz.depth();
        let initial = ansatz.default_initial_flat();
        let fast = self.fast_path(ansatz);
        let objective = |params: &[f64]| -> f64 {
            let energy = match &fast {
                Some(compiled) => compiled.energy_flat(params),
                None => self.energy_flat(ansatz, params),
            };
            match energy {
                Ok(e) => -e,
                Err(_) => f64::INFINITY,
            }
        };
        let result = optimizer.minimize(&objective, &initial, budget);
        let best_energy = -result.best_value;
        let (gammas, betas) = result.best_point.split_at(p);
        let trained = TrainedCircuit {
            energy: best_energy,
            gammas: gammas.to_vec(),
            betas: betas.to_vec(),
            evaluations: result.evaluations,
            approx_ratio: self.approx_ratio(best_energy),
            classical_optimum: self.classical.best,
            classical_quality: self.classical.quality,
        };
        Ok((trained, result.trace))
    }

    /// Begin a **resumable** training run: the returned [`TrainingSession`]
    /// can be advanced in budget rungs (successive halving) and always
    /// continues from its checkpointed optimizer state instead of
    /// restarting.
    ///
    /// `initial` is the flat `[γ…, β…]` starting point (`None` = the
    /// paper-style small-angle default; the search pipeline passes a
    /// [warm start](QaoaAnsatz::warm_start_flat) transferred from depth
    /// `p − 1`). `budget_hint` is the total evaluation budget the run will
    /// receive if it survives every pruning rung (forwarded to
    /// [`Resumable::start`]). No objective evaluations are consumed here.
    pub fn begin_training(
        &self,
        ansatz: &QaoaAnsatz,
        optimizer: &dyn Resumable,
        initial: Option<&[f64]>,
        budget_hint: usize,
    ) -> Result<TrainingSession, QaoaError> {
        if self.problem.terms().is_empty() {
            return Err(QaoaError::EmptyGraph);
        }
        let p = ansatz.depth();
        let initial_vec = match initial {
            Some(x) => {
                if x.len() != 2 * p {
                    return Err(QaoaError::WrongParameterCount {
                        kind: "flat".to_string(),
                        depth: p,
                        expected: 2 * p,
                        got: x.len(),
                    });
                }
                x.to_vec()
            }
            None => ansatz.default_initial_flat(),
        };
        let fast = self.fast_path(ansatz);
        let state = (p > 0).then(|| optimizer.start(&initial_vec, budget_hint));
        Ok(TrainingSession {
            evaluator: self.clone(),
            ansatz: ansatz.clone(),
            fast,
            state,
            zero_depth: None,
            hook: None,
        })
    }
}

/// A telemetry snapshot emitted by a [`TrainingSession`] every time it is
/// advanced — the per-session event hook the search session layer builds
/// its `SessionAdvanced` stream on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingProgress {
    /// Cumulative objective evaluations consumed so far.
    pub evaluations: usize,
    /// Best (maximal) energy found so far.
    pub best_energy: f64,
    /// Whether the underlying optimizer has converged (no further budget
    /// will be spent even if the target grows).
    pub converged: bool,
}

/// A boxed observer fired by [`TrainingSession::advance_in`] after every
/// advance (including no-op snapshots and the depth-0 fast path).
///
/// Hooks travel with the session across threads (the search pipeline's
/// work-stealing workers own their sessions), hence `Send`.
pub struct ProgressHook(Box<dyn FnMut(&TrainingProgress) + Send>);

impl ProgressHook {
    /// Wrap a closure as a progress hook.
    pub fn new(hook: impl FnMut(&TrainingProgress) + Send + 'static) -> ProgressHook {
        ProgressHook(Box::new(hook))
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// A checkpointable training run of one ansatz on one graph.
///
/// Created by [`EnergyEvaluator::begin_training`]. Each
/// [`advance_in`](Self::advance_in) call continues the underlying
/// [`Resumable`] optimizer until its cumulative evaluation count reaches a
/// target — the successive-halving pipeline promotes a candidate simply by
/// calling `advance_in` again with the next rung's larger target.
#[derive(Debug)]
pub struct TrainingSession {
    evaluator: EnergyEvaluator,
    ansatz: QaoaAnsatz,
    fast: Option<CompiledEnergy>,
    /// `None` only for depth-0 ansätze, which have nothing to optimize.
    state: Option<OptimizerState>,
    /// Cached depth-0 result (a single plus-state evaluation).
    zero_depth: Option<TrainedCircuit>,
    /// Optional observer fired after every advance.
    hook: Option<ProgressHook>,
}

impl TrainingSession {
    /// Register width of the trained ansatz (the size a scratch state passed
    /// to [`advance_in`](Self::advance_in) must have).
    pub fn num_qubits(&self) -> usize {
        self.ansatz.num_qubits()
    }

    /// Whether this session runs on the compiled state-vector fast path and
    /// therefore profits from an external scratch state.
    pub fn uses_compiled_scratch(&self) -> bool {
        self.fast.is_some()
    }

    /// Cumulative objective evaluations consumed so far.
    pub fn evaluations(&self) -> usize {
        match &self.state {
            Some(s) => s.evaluations(),
            None => usize::from(self.zero_depth.is_some()),
        }
    }

    /// Whether the underlying optimizer run has converged (depth-0 sessions
    /// converge after their single evaluation).
    pub fn converged(&self) -> bool {
        match &self.state {
            Some(s) => s.converged(),
            None => self.zero_depth.is_some(),
        }
    }

    /// Install (or clear) the observer fired after every advance. The search
    /// session layer uses this to surface per-session telemetry events.
    pub fn set_progress_hook(&mut self, hook: Option<ProgressHook>) {
        self.hook = hook;
    }

    /// Fire the installed hook (if any) with the given trained snapshot.
    fn emit_progress(hook: &mut Option<ProgressHook>, trained: &TrainedCircuit, converged: bool) {
        if let Some(ProgressHook(observer)) = hook {
            observer(&TrainingProgress {
                evaluations: trained.evaluations,
                best_energy: trained.energy,
                converged,
            });
        }
    }

    /// Advance training until the optimizer has consumed `target_evaluations`
    /// cumulative objective evaluations (a target at or below the current
    /// count is a snapshot no-op).
    pub fn advance(
        &mut self,
        optimizer: &dyn Resumable,
        target_evaluations: usize,
    ) -> Result<TrainedCircuit, QaoaError> {
        self.advance_in(optimizer, target_evaluations, None)
    }

    /// [`advance`](Self::advance) with an optional caller-provided scratch
    /// state for the compiled fast path (per-worker buffer reuse in the
    /// search pipeline). The scratch must have [`num_qubits`](Self::num_qubits)
    /// qubits; it is ignored when the session does not use the compiled path.
    pub fn advance_in(
        &mut self,
        optimizer: &dyn Resumable,
        target_evaluations: usize,
        scratch: Option<&mut StateVector>,
    ) -> Result<TrainedCircuit, QaoaError> {
        let TrainingSession {
            evaluator,
            ansatz,
            fast,
            state,
            zero_depth,
            hook,
        } = self;

        let Some(state) = state.as_mut() else {
            // Depth 0: a single evaluation of the plus state, cached.
            if zero_depth.is_none() {
                let energy = evaluator.energy(ansatz, &[], &[])?;
                *zero_depth = Some(TrainedCircuit {
                    energy,
                    gammas: vec![],
                    betas: vec![],
                    evaluations: 1,
                    approx_ratio: evaluator.approx_ratio(energy),
                    classical_optimum: evaluator.classical.best,
                    classical_quality: evaluator.classical.quality,
                });
            }
            let trained = zero_depth.clone().expect("just cached");
            Self::emit_progress(hook, &trained, true);
            return Ok(trained);
        };

        if let (Some(compiled), Some(buf)) = (&*fast, scratch.as_deref()) {
            if buf.num_qubits() != compiled.num_qubits() {
                return Err(QaoaError::Backend {
                    message: format!(
                        "scratch state has {} qubits, ansatz needs {}",
                        buf.num_qubits(),
                        compiled.num_qubits()
                    ),
                });
            }
        }

        // The optimizer needs a `Fn + Sync` objective, so a mutable external
        // scratch goes behind an (uncontended, worker-local) mutex.
        let scratch_cell = scratch.map(Mutex::new);
        let objective = |params: &[f64]| -> f64 {
            let energy = match (&*fast, &scratch_cell) {
                (Some(compiled), Some(cell)) => {
                    let mut buf = cell.lock().unwrap_or_else(|e| e.into_inner());
                    compiled.energy_flat_in(params, &mut buf)
                }
                (Some(compiled), None) => compiled.energy_flat(params),
                (None, _) => evaluator.energy_flat(ansatz, params),
            };
            match energy {
                Ok(e) => -e,
                Err(_) => f64::INFINITY,
            }
        };
        let result = optimizer.resume_until(state, &objective, target_evaluations);
        let converged = state.converged();
        let trained = Self::trained_from(evaluator, ansatz.depth(), result)?;
        Self::emit_progress(hook, &trained, converged);
        Ok(trained)
    }

    /// [`advance`](Self::advance) through the optimizer's **batch-step
    /// protocol**: probe sets proposed by the optimizer are evaluated in one
    /// batched statevector sweep ([`CompiledEnergy::energy_batch_in`]),
    /// bit-identical to the scalar path — identical angles, energies and
    /// evaluation counts for any batch size.
    pub fn advance_batched(
        &mut self,
        optimizer: &dyn Resumable,
        target_evaluations: usize,
    ) -> Result<TrainedCircuit, QaoaError> {
        self.advance_batched_in(optimizer, target_evaluations, None)
    }

    /// [`advance_batched`](Self::advance_batched) with an optional
    /// caller-provided [`BatchScratch`] (per-worker buffer reuse in the
    /// search pipeline). Ignored when the session does not use the compiled
    /// fast path.
    pub fn advance_batched_in(
        &mut self,
        optimizer: &dyn Resumable,
        target_evaluations: usize,
        scratch: Option<&mut BatchScratch>,
    ) -> Result<TrainedCircuit, QaoaError> {
        let TrainingSession {
            evaluator,
            ansatz,
            fast,
            state,
            zero_depth,
            hook,
        } = self;

        let Some(state) = state.as_mut() else {
            // Depth 0: a single evaluation of the plus state, cached.
            if zero_depth.is_none() {
                let energy = evaluator.energy(ansatz, &[], &[])?;
                *zero_depth = Some(TrainedCircuit {
                    energy,
                    gammas: vec![],
                    betas: vec![],
                    evaluations: 1,
                    approx_ratio: evaluator.approx_ratio(energy),
                    classical_optimum: evaluator.classical.best,
                    classical_quality: evaluator.classical.quality,
                });
            }
            let trained = zero_depth.clone().expect("just cached");
            Self::emit_progress(hook, &trained, true);
            return Ok(trained);
        };

        // Both objectives share the scratch behind an (uncontended,
        // worker-local) mutex; the batch driver only ever runs one at a time.
        let scratch_cell = scratch.map(Mutex::new);
        let scalar_objective = |params: &[f64]| -> f64 {
            let energy = match (&*fast, &scratch_cell) {
                (Some(compiled), Some(cell)) => {
                    let mut buf = cell.lock().unwrap_or_else(|e| e.into_inner());
                    let BatchScratch { scalar, values, .. } = &mut **buf;
                    compiled.energy_flat_with(params, scalar, values)
                }
                (Some(compiled), None) => compiled.energy_flat(params),
                (None, _) => evaluator.energy_flat(ansatz, params),
            };
            match energy {
                Ok(e) => -e,
                Err(_) => f64::INFINITY,
            }
        };
        let mut batch_objective = |points: &[Vec<f64>]| -> Vec<f64> {
            let energies = match (&*fast, &scratch_cell) {
                (Some(compiled), Some(cell)) => {
                    let mut buf = cell.lock().unwrap_or_else(|e| e.into_inner());
                    compiled.energy_batch_in(points, &mut buf)
                }
                (Some(compiled), None) => compiled.energy_batch(points),
                (None, _) => {
                    // No compiled sweep to amortize: evaluate point by point,
                    // exactly as the scalar protocol would.
                    return points.iter().map(|p| scalar_objective(p)).collect();
                }
            };
            match energies {
                Ok(es) => es.into_iter().map(|e| -e).collect(),
                Err(_) => vec![f64::INFINITY; points.len()],
            }
        };
        let result = optimizer.resume_until_batched(
            state,
            &mut batch_objective,
            &scalar_objective,
            target_evaluations,
        );
        let converged = state.converged();
        let trained = Self::trained_from(evaluator, ansatz.depth(), result)?;
        Self::emit_progress(hook, &trained, converged);
        Ok(trained)
    }

    /// Snapshot the best result found so far without advancing the run.
    pub fn best(&self) -> Result<TrainedCircuit, QaoaError> {
        match (&self.state, &self.zero_depth) {
            (Some(state), _) => {
                Self::trained_from(&self.evaluator, self.ansatz.depth(), state.result())
            }
            (None, Some(t)) => Ok(t.clone()),
            (None, None) => Err(QaoaError::Backend {
                message: "depth-0 session has not been advanced yet".to_string(),
            }),
        }
    }

    fn trained_from(
        evaluator: &EnergyEvaluator,
        p: usize,
        result: OptimizationResult,
    ) -> Result<TrainedCircuit, QaoaError> {
        let best_energy = -result.best_value;
        if !best_energy.is_finite() {
            return Err(QaoaError::Backend {
                message: "optimizer failed to produce a finite energy".to_string(),
            });
        }
        let (gammas, betas) = result.best_point.split_at(p);
        Ok(TrainedCircuit {
            energy: best_energy,
            gammas: gammas.to_vec(),
            betas: betas.to_vec(),
            evaluations: result.evaluations,
            approx_ratio: evaluator.approx_ratio(best_energy),
            classical_optimum: evaluator.classical.best,
            classical_quality: evaluator.classical.quality,
        })
    }
}

/// The compiled QAOA objective: ansatz lowered once, problem diagonal cached
/// per graph, scratch state reused across evaluations.
///
/// Build via [`EnergyEvaluator::compile`]. One [`CompiledEnergy::energy_flat`]
/// call is a full circuit simulation plus diagonal expectation with zero heap
/// allocation — the entire QAOA training hot loop.
#[derive(Debug)]
pub struct CompiledEnergy {
    program: CompiledProgram,
    num_qubits: usize,
    /// Program slot for each flat parameter position (`[γ…, β…]`); `None`
    /// when the ansatz never uses that angle (e.g. a parameterless mixer).
    slot_for_flat: Vec<Option<usize>>,
    /// problem diagonal `C(z)` for every basis state, shared with (and
    /// cached by) the graph's [`EnergyEvaluator`].
    diag: Arc<Vec<f64>>,
    /// Scratch buffers, reused across calls. The lock is uncontended in
    /// sequential optimizers and negligible next to the `2^n` kernel work.
    /// The `2^n` state is allocated lazily on the first
    /// [`CompiledEnergy::energy_flat`] call: callers that always supply an
    /// external scratch via [`CompiledEnergy::energy_flat_in`] (the search
    /// pipeline's per-worker buffers) never pay for it.
    scratch: Mutex<Scratch>,
}

#[derive(Debug)]
struct Scratch {
    state: Option<StateVector>,
    slots: Vec<f64>,
    /// Batch buffers for the internal-scratch [`CompiledEnergy::energy_batch`]
    /// path, built lazily like `state` — scalar-only callers never pay.
    batch: BatchScratch,
}

/// Reusable buffers for [`CompiledEnergy::energy_batch_in`]: the `2^n × B`
/// structure-of-arrays amplitude buffer, a scalar state for single-point
/// tiles, and the flattened slot-value staging area.
///
/// One `BatchScratch` per worker serves every candidate trained on the same
/// graph size (the batch buffer is resized in place across tile sizes), the
/// batched analogue of the per-worker [`StateVector`] scratch.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// The `2^n × B` amplitude buffer, amplitude-major × batch-minor.
    batch: Option<BatchStateVector>,
    /// Scalar state for size-1 tiles (and B = 1 calls), which delegate to
    /// the sequential sweep.
    scalar: Option<StateVector>,
    /// Slot values for the whole tile, batch-major (`np` per point).
    values: Vec<f64>,
    /// Per-tile energies from the batched diagonal expectation.
    energies: Vec<f64>,
}

impl BatchScratch {
    /// An empty scratch; all buffers are built lazily on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }
}

impl CompiledEnergy {
    fn build(eval: &EnergyEvaluator, ansatz: &QaoaAnsatz) -> Result<CompiledEnergy, QaoaError> {
        let map_err = |e: statevec::SimulatorError| QaoaError::Backend {
            message: e.to_string(),
        };
        let program = CompiledProgram::compile(ansatz.template()).map_err(map_err)?;
        let p = ansatz.depth();
        let mut slot_for_flat = vec![None; 2 * p];
        for k in 0..p {
            slot_for_flat[k] = program.param_index(&format!("gamma_{k}"));
            slot_for_flat[p + k] = program.param_index(&format!("beta_{k}"));
        }
        let covered = slot_for_flat.iter().flatten().count();
        if covered != program.num_params() {
            return Err(QaoaError::Backend {
                message: format!(
                    "ansatz template has {} parameters but only {covered} match \
                     the gamma_k/beta_k layout",
                    program.num_params()
                ),
            });
        }
        let n = ansatz.num_qubits();
        // After the compile above succeeded, n is within the dense limit, so
        // materializing the 2^n diagonal (cached per graph) is safe.
        let diag = eval.problem_diag();
        let slots = vec![0.0; program.num_params()];
        Ok(CompiledEnergy {
            program,
            num_qubits: n,
            slot_for_flat,
            diag,
            scratch: Mutex::new(Scratch {
                state: None,
                slots,
                batch: BatchScratch::new(),
            }),
        })
    }

    /// Register width of the compiled program.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The lowered program (op/table counts are useful for diagnostics).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// ⟨C⟩ for a flat parameter vector `[γ…, β…]`, allocation-free (after
    /// the internal scratch state is built on first use).
    pub fn energy_flat(&self, params: &[f64]) -> Result<f64, QaoaError> {
        self.check_params(params)?;
        let map_err = |e: statevec::SimulatorError| QaoaError::Backend {
            message: e.to_string(),
        };
        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let Scratch { state, slots, .. } = &mut *guard;
        let state = match state {
            Some(s) => s,
            None => state.insert(StateVector::zero_state(self.num_qubits).map_err(map_err)?),
        };
        Self::fill_slots(&self.slot_for_flat, params, slots);
        self.program.execute_into(slots, state).map_err(map_err)?;
        state.expectation_diagonal(&self.diag).map_err(map_err)
    }

    /// ⟨C⟩ for a flat parameter vector, simulated into a caller-provided
    /// scratch state (must have this program's register width).
    ///
    /// This is the zero-allocation path the search pipeline's work-stealing
    /// workers use: one `2^n` buffer per worker, shared across every
    /// candidate trained on the same graph size, instead of one buffer per
    /// compiled objective.
    pub fn energy_flat_in(
        &self,
        params: &[f64],
        state: &mut StateVector,
    ) -> Result<f64, QaoaError> {
        self.check_params(params)?;
        let map_err = |e: statevec::SimulatorError| QaoaError::Backend {
            message: e.to_string(),
        };
        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        let slots = &mut guard.slots;
        Self::fill_slots(&self.slot_for_flat, params, slots);
        self.program.execute_into(slots, state).map_err(map_err)?;
        state.expectation_diagonal(&self.diag).map_err(map_err)
    }

    fn check_params(&self, params: &[f64]) -> Result<(), QaoaError> {
        if params.len() != self.slot_for_flat.len() {
            return Err(QaoaError::WrongParameterCount {
                kind: "flat".to_string(),
                depth: self.slot_for_flat.len() / 2,
                expected: self.slot_for_flat.len(),
                got: params.len(),
            });
        }
        Ok(())
    }

    fn fill_slots(slot_for_flat: &[Option<usize>], params: &[f64], slots: &mut [f64]) {
        for (value, slot) in params.iter().zip(slot_for_flat) {
            if let Some(s) = *slot {
                slots[s] = *value;
            }
        }
    }

    /// ⟨C⟩ for `B` flat parameter vectors in one batched sweep, bit-identical
    /// to `B` sequential [`CompiledEnergy::energy_flat_in`] calls.
    ///
    /// Points are processed in cache-sized tiles
    /// ([`statevec::preferred_batch_tile`]); single-point tiles (including
    /// every `B = 1` call) delegate to the scalar sweep, so the batch path
    /// never costs more than the sequential one. All buffers come from the
    /// caller's [`BatchScratch`] and are reused across calls.
    pub fn energy_batch_in<P: AsRef<[f64]>>(
        &self,
        points: &[P],
        scratch: &mut BatchScratch,
    ) -> Result<Vec<f64>, QaoaError> {
        for p in points {
            self.check_params(p.as_ref())?;
        }
        let map_err = |e: statevec::SimulatorError| QaoaError::Backend {
            message: e.to_string(),
        };
        let np = self.program.num_params();
        let tile = statevec::preferred_batch_tile(self.num_qubits, points.len());
        let mut out = Vec::with_capacity(points.len());
        for chunk in points.chunks(tile.max(1)) {
            if chunk.len() == 1 {
                // The sequential sweep *is* the reference semantics; using it
                // for singleton tiles makes bit-identity trivial there and
                // keeps B = 1 at exactly the scalar cost.
                out.push(self.energy_flat_with(
                    chunk[0].as_ref(),
                    &mut scratch.scalar,
                    &mut scratch.values,
                )?);
                continue;
            }
            let b = chunk.len();
            scratch.values.clear();
            scratch.values.resize(np * b, 0.0);
            for (i, p) in chunk.iter().enumerate() {
                Self::fill_slots(
                    &self.slot_for_flat,
                    p.as_ref(),
                    &mut scratch.values[i * np..(i + 1) * np],
                );
            }
            let state = match &mut scratch.batch {
                Some(s) if s.num_qubits() == self.num_qubits => {
                    s.resize_batch(b);
                    s
                }
                slot => {
                    slot.insert(BatchStateVector::zero_states(self.num_qubits, b).map_err(map_err)?)
                }
            };
            self.program
                .execute_batch_into(&scratch.values, state)
                .map_err(map_err)?;
            state
                .expectation_diagonal_batch(&self.diag, &mut scratch.energies)
                .map_err(map_err)?;
            out.extend_from_slice(&scratch.energies);
        }
        Ok(out)
    }

    /// [`energy_batch_in`](Self::energy_batch_in) with the compiled
    /// objective's internal scratch (built lazily on first use), for callers
    /// without a per-worker buffer.
    pub fn energy_batch<P: AsRef<[f64]>>(&self, points: &[P]) -> Result<Vec<f64>, QaoaError> {
        let mut guard = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        self.energy_batch_in(points, &mut guard.batch)
    }

    /// The scalar sweep against caller-owned buffers (the singleton-tile leg
    /// of the batch path): same op sequence as
    /// [`energy_flat_in`](Self::energy_flat_in), hence bitwise equal.
    fn energy_flat_with(
        &self,
        params: &[f64],
        state: &mut Option<StateVector>,
        slots: &mut Vec<f64>,
    ) -> Result<f64, QaoaError> {
        let map_err = |e: statevec::SimulatorError| QaoaError::Backend {
            message: e.to_string(),
        };
        let state = match state {
            Some(s) if s.num_qubits() == self.num_qubits => s,
            s => {
                *s = Some(StateVector::zero_state(self.num_qubits).map_err(map_err)?);
                s.as_mut().expect("just inserted")
            }
        };
        slots.clear();
        slots.resize(self.program.num_params(), 0.0);
        Self::fill_slots(&self.slot_for_flat, params, slots);
        self.program.execute_into(slots, state).map_err(map_err)?;
        state.expectation_diagonal(&self.diag).map_err(map_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixer::Mixer;
    use optim::{CobylaOptimizer, NelderMead};

    #[test]
    fn zero_angles_give_half_total_weight() {
        let graph = Graph::cycle(6);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let e = eval.energy(&ansatz, &[0.0], &[0.0]).unwrap();
        assert!((e - 3.0).abs() < 1e-10);
    }

    #[test]
    fn p1_training_beats_random_guessing_on_a_cycle() {
        let graph = Graph::cycle(6); // max cut = 6
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let trained = eval
            .train(&ansatz, &CobylaOptimizer::default(), 150)
            .unwrap();
        // p=1 QAOA on an even cycle reaches r >= 0.69 (well above 0.5).
        assert!(trained.energy > 3.6, "energy {}", trained.energy);
        assert!(trained.approx_ratio > 0.6);
        assert!(trained.approx_ratio <= 1.0 + 1e-9);
        assert_eq!(trained.classical_optimum, 6.0);
    }

    #[test]
    fn deeper_ansatz_does_not_do_worse() {
        let graph = Graph::erdos_renyi(6, 0.5, 5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let opt = CobylaOptimizer::default();
        let a1 = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let a2 = QaoaAnsatz::new(&graph, 2, Mixer::baseline());
        let e1 = eval.train(&a1, &opt, 120).unwrap().energy;
        let e2 = eval.train(&a2, &opt, 200).unwrap().energy;
        // Depth-2 can represent depth-1 solutions; allow a small optimizer slack.
        assert!(e2 >= e1 - 0.15, "p=2 energy {e2} much worse than p=1 {e1}");
    }

    #[test]
    fn energy_never_exceeds_classical_optimum() {
        let graph = Graph::erdos_renyi(7, 0.5, 9);
        let eval = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let trained = eval.train(&ansatz, &NelderMead::default(), 150).unwrap();
        assert!(trained.energy <= eval.classical_optimum() + 1e-9);
        assert!(trained.approx_ratio <= 1.0 + 1e-9);
        assert!(trained.approx_ratio >= 0.0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let graph = Graph::empty(4);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        assert!(matches!(
            eval.train(&ansatz, &CobylaOptimizer::default(), 50),
            Err(QaoaError::EmptyGraph)
        ));
    }

    #[test]
    fn train_with_trace_returns_monotone_best_curve() {
        let graph = Graph::cycle(5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let (trained, trace) = eval
            .train_with_trace(&ansatz, &CobylaOptimizer::default(), 80)
            .unwrap();
        assert!(!trace.is_empty());
        assert!((trace.best().unwrap() + trained.energy).abs() < 1e-9);
        for w in trace.best_curve().windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn depth_zero_training_returns_plus_state_energy() {
        let graph = Graph::cycle(4);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 0, Mixer::baseline());
        let trained = eval
            .train(&ansatz, &CobylaOptimizer::default(), 10)
            .unwrap();
        assert!((trained.energy - 2.0).abs() < 1e-10);
        assert_eq!(trained.evaluations, 1);
    }

    #[test]
    fn multistart_training_is_at_least_as_good_as_single_start() {
        let graph = Graph::erdos_renyi(7, 0.5, 31);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let single = eval.train(&ansatz, &opt, 60).unwrap();
        let multi = eval.train_multistart(&ansatz, &opt, 180, 3).unwrap();
        assert!(
            multi.energy >= single.energy - 0.05,
            "multi-start {} fell behind single start {}",
            multi.energy,
            single.energy
        );
        assert!(multi.approx_ratio <= 1.0 + 1e-9);
        assert!(multi.evaluations > 0);
    }

    #[test]
    fn multistart_with_one_restart_equals_plain_training() {
        let graph = Graph::cycle(5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let a = eval.train(&ansatz, &opt, 50).unwrap();
        let b = eval.train_multistart(&ansatz, &opt, 50, 1).unwrap();
        assert!((a.energy - b.energy).abs() < 1e-12);
    }

    #[test]
    fn session_advanced_in_rungs_equals_one_shot_training() {
        let graph = Graph::erdos_renyi(7, 0.5, 11);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let opt = CobylaOptimizer::default();

        let one_shot = eval.train(&ansatz, &opt, 120).unwrap();

        let mut session = eval.begin_training(&ansatz, &opt, None, 120).unwrap();
        session.advance(&opt, 30).unwrap();
        session.advance(&opt, 70).unwrap();
        let resumed = session.advance(&opt, 120).unwrap();

        assert_eq!(one_shot.energy, resumed.energy, "bitwise equality expected");
        assert_eq!(one_shot.gammas, resumed.gammas);
        assert_eq!(one_shot.betas, resumed.betas);
        assert_eq!(one_shot.evaluations, resumed.evaluations);
    }

    #[test]
    fn session_external_scratch_matches_internal_scratch() {
        let graph = Graph::cycle(6);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();

        let mut internal = eval.begin_training(&ansatz, &opt, None, 60).unwrap();
        let a = internal.advance(&opt, 60).unwrap();

        let mut external = eval.begin_training(&ansatz, &opt, None, 60).unwrap();
        assert!(external.uses_compiled_scratch());
        let mut buf = StateVector::zero_state(6).unwrap();
        let b = external.advance_in(&opt, 60, Some(&mut buf)).unwrap();

        assert_eq!(a.energy, b.energy);
        assert_eq!(a.gammas, b.gammas);
        assert_eq!(a.betas, b.betas);
    }

    #[test]
    fn session_rejects_mis_sized_scratch() {
        let graph = Graph::cycle(5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 40).unwrap();
        let mut wrong = StateVector::zero_state(3).unwrap();
        assert!(session.advance_in(&opt, 40, Some(&mut wrong)).is_err());
    }

    #[test]
    fn session_with_warm_start_initial_point() {
        let graph = Graph::erdos_renyi(6, 0.5, 3);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let opt = CobylaOptimizer::default();
        let shallow = eval
            .train(&QaoaAnsatz::new(&graph, 1, Mixer::baseline()), &opt, 80)
            .unwrap();
        let deeper = QaoaAnsatz::new(&graph, 2, Mixer::baseline());
        let warm = deeper.warm_start_flat(&shallow.gammas, &shallow.betas);
        let mut session = eval.begin_training(&deeper, &opt, Some(&warm), 80).unwrap();
        let trained = session.advance(&opt, 80).unwrap();
        // Warm-started depth-2 must not fall behind the depth-1 optimum by
        // more than optimizer noise.
        assert!(
            trained.energy >= shallow.energy - 0.05,
            "warm-started {} vs shallow {}",
            trained.energy,
            shallow.energy
        );
    }

    #[test]
    fn session_wrong_initial_length_is_rejected() {
        let graph = Graph::cycle(5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        assert!(matches!(
            eval.begin_training(&ansatz, &opt, Some(&[0.1]), 40),
            Err(QaoaError::WrongParameterCount { .. })
        ));
    }

    #[test]
    fn session_depth_zero_is_one_evaluation() {
        let graph = Graph::cycle(4);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 0, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 10).unwrap();
        let t = session.advance(&opt, 10).unwrap();
        assert!((t.energy - 2.0).abs() < 1e-10);
        assert_eq!(session.evaluations(), 1);
        // Advancing again does not re-evaluate.
        session.advance(&opt, 50).unwrap();
        assert_eq!(session.evaluations(), 1);
    }

    #[test]
    fn session_progress_hook_fires_per_advance() {
        let graph = Graph::cycle(6);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 60).unwrap();

        let log = std::sync::Arc::new(Mutex::new(Vec::<TrainingProgress>::new()));
        let sink = std::sync::Arc::clone(&log);
        session.set_progress_hook(Some(ProgressHook::new(move |p| {
            sink.lock().unwrap().push(p.clone());
        })));

        let a = session.advance(&opt, 20).unwrap();
        let b = session.advance(&opt, 60).unwrap();
        let seen = log.lock().unwrap().clone();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].evaluations, a.evaluations);
        assert_eq!(seen[0].best_energy, a.energy);
        assert_eq!(seen[1].evaluations, b.evaluations);
        assert_eq!(seen[1].best_energy, b.energy);
        assert!(seen[0].evaluations <= seen[1].evaluations);

        // Clearing the hook stops the stream; the session still advances.
        session.set_progress_hook(None);
        session.advance(&opt, 60).unwrap();
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn session_progress_hook_marks_depth_zero_converged() {
        let graph = Graph::cycle(4);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 0, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 10).unwrap();
        let log = std::sync::Arc::new(Mutex::new(Vec::<TrainingProgress>::new()));
        let sink = std::sync::Arc::clone(&log);
        session.set_progress_hook(Some(ProgressHook::new(move |p| {
            sink.lock().unwrap().push(p.clone());
        })));
        session.advance(&opt, 10).unwrap();
        let seen = log.lock().unwrap().clone();
        assert_eq!(seen.len(), 1);
        assert!(seen[0].converged);
        assert_eq!(seen[0].evaluations, 1);
        assert!(session.converged());
    }

    #[test]
    fn session_best_snapshot_matches_last_advance() {
        let graph = Graph::cycle(6);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 50).unwrap();
        let advanced = session.advance(&opt, 50).unwrap();
        let snapshot = session.best().unwrap();
        assert_eq!(advanced.energy, snapshot.energy);
        assert_eq!(advanced.evaluations, snapshot.evaluations);
    }

    #[test]
    fn session_works_on_tensor_network_backend() {
        let graph = Graph::erdos_renyi(6, 0.4, 21);
        let eval = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 60).unwrap();
        assert!(!session.uses_compiled_scratch());
        let trained = session.advance(&opt, 60).unwrap();
        let one_shot = eval.train(&ansatz, &opt, 60).unwrap();
        assert_eq!(trained.energy, one_shot.energy);
    }

    #[test]
    fn compiled_energy_flat_in_matches_energy_flat() {
        let graph = Graph::erdos_renyi(7, 0.5, 13);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let compiled = eval.compile(&ansatz).unwrap();
        let params = [0.3, -0.2, 0.5, 0.1];
        let a = compiled.energy_flat(&params).unwrap();
        let mut buf = StateVector::zero_state(7).unwrap();
        let b = compiled.energy_flat_in(&params, &mut buf).unwrap();
        assert_eq!(
            a, b,
            "external and internal scratch paths must agree bitwise"
        );
        assert_eq!(compiled.num_qubits(), 7);
    }

    #[test]
    fn every_shipped_problem_trains_end_to_end() {
        let graph = Graph::erdos_renyi(6, 0.5, 19);
        for kind in graphs::ProblemKind::all(19) {
            for backend in [Backend::StateVector, Backend::TensorNetwork] {
                let problem = kind.instantiate(&graph);
                let eval = EnergyEvaluator::for_problem(&graph, problem.clone(), backend).unwrap();
                let ansatz = QaoaAnsatz::for_problem(&problem, 1, Mixer::baseline()).unwrap();
                let trained = eval
                    .train(&ansatz, &CobylaOptimizer::default(), 40)
                    .unwrap();
                assert!(
                    trained.energy <= eval.classical_optimum() + 1e-9,
                    "{} on {backend}: energy {} above optimum {}",
                    problem.name(),
                    trained.energy,
                    eval.classical_optimum()
                );
                assert!(
                    trained.approx_ratio <= 1.0 + 1e-9,
                    "{} on {backend}: ratio {}",
                    problem.name(),
                    trained.approx_ratio
                );
                assert!(trained.approx_ratio >= -1e-9);
                assert_eq!(
                    trained.classical_quality,
                    graphs::SolutionQuality::Exact,
                    "{}",
                    problem.name()
                );
            }
        }
    }

    #[test]
    fn compiled_fast_path_matches_bind_per_call_for_problems() {
        let graph = Graph::erdos_renyi(7, 0.5, 29);
        for kind in graphs::ProblemKind::all(29) {
            let problem = kind.instantiate(&graph);
            let eval = EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector)
                .unwrap();
            let ansatz = QaoaAnsatz::for_problem(&problem, 2, Mixer::qnas()).unwrap();
            let compiled = eval.compile(&ansatz).unwrap();
            let params = [0.3, -0.2, 0.5, 0.1];
            let fast = compiled.energy_flat(&params).unwrap();
            let slow = eval.energy_flat(&ansatz, &params).unwrap();
            assert!(
                (fast - slow).abs() < 1e-10,
                "{}: compiled {fast} vs bind-per-call {slow}",
                problem.name()
            );
        }
    }

    #[test]
    fn energy_batch_in_is_bitwise_identical_to_sequential_energy_flat_in() {
        let graph = Graph::erdos_renyi(7, 0.5, 13);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let compiled = eval.compile(&ansatz).unwrap();
        let mut scratch = BatchScratch::new();
        let mut buf = StateVector::zero_state(7).unwrap();
        for batch in [1usize, 2, 7, 64] {
            let points: Vec<Vec<f64>> = (0..batch)
                .map(|i| {
                    (0..4)
                        .map(|j| 0.1 + 0.07 * i as f64 - 0.13 * j as f64)
                        .collect()
                })
                .collect();
            let batched = compiled.energy_batch_in(&points, &mut scratch).unwrap();
            assert_eq!(batched.len(), batch);
            for (p, &e) in points.iter().zip(&batched) {
                let scalar = compiled.energy_flat_in(p, &mut buf).unwrap();
                assert_eq!(
                    e.to_bits(),
                    scalar.to_bits(),
                    "B={batch}: batched {e} vs scalar {scalar}"
                );
            }
        }
    }

    #[test]
    fn energy_batch_internal_scratch_matches_external() {
        let graph = Graph::cycle(6);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let compiled = eval.compile(&ansatz).unwrap();
        let points: Vec<Vec<f64>> = (0..5).map(|i| vec![0.2 + 0.1 * i as f64, -0.3]).collect();
        let internal = compiled.energy_batch(&points).unwrap();
        let mut scratch = BatchScratch::new();
        let external = compiled.energy_batch_in(&points, &mut scratch).unwrap();
        for (a, b) in internal.iter().zip(&external) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And both agree with the one-at-a-time compiled path.
        for (p, &e) in points.iter().zip(&internal) {
            assert_eq!(compiled.energy_flat(p).unwrap().to_bits(), e.to_bits());
        }
    }

    #[test]
    fn energy_batch_rejects_mis_sized_points() {
        let graph = Graph::cycle(5);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let compiled = eval.compile(&ansatz).unwrap();
        let points = vec![vec![0.1, 0.2], vec![0.1, 0.2, 0.3]];
        assert!(matches!(
            compiled.energy_batch(&points),
            Err(QaoaError::WrongParameterCount { .. })
        ));
        // Empty batches are a no-op, not an error.
        assert!(compiled.energy_batch::<Vec<f64>>(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_scratch_is_reusable_across_graph_sizes() {
        let mut scratch = BatchScratch::new();
        for n in [4usize, 6, 5] {
            let graph = Graph::cycle(n);
            let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
            let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
            let compiled = eval.compile(&ansatz).unwrap();
            let points: Vec<Vec<f64>> = (0..3).map(|i| vec![0.1 * i as f64, 0.4]).collect();
            let batched = compiled.energy_batch_in(&points, &mut scratch).unwrap();
            for (p, &e) in points.iter().zip(&batched) {
                assert_eq!(compiled.energy_flat(p).unwrap().to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn advance_batched_is_bitwise_identical_to_advance() {
        let graph = Graph::erdos_renyi(7, 0.5, 11);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        for kind in optim::OptimizerKind::all() {
            let opt = kind.build_resumable();
            let mut scalar = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
            scalar.advance(&*opt, 30).unwrap();
            let a = scalar.advance(&*opt, 90).unwrap();

            let mut batched = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
            let mut scratch = BatchScratch::new();
            batched
                .advance_batched_in(&*opt, 30, Some(&mut scratch))
                .unwrap();
            let b = batched
                .advance_batched_in(&*opt, 90, Some(&mut scratch))
                .unwrap();

            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{kind}");
            assert_eq!(a.gammas, b.gammas, "{kind}");
            assert_eq!(a.betas, b.betas, "{kind}");
            assert_eq!(a.evaluations, b.evaluations, "{kind}");

            // Mixed rungs interleave too: batched then scalar.
            let mut mixed = eval.begin_training(&ansatz, &*opt, None, 90).unwrap();
            mixed.advance_batched(&*opt, 30).unwrap();
            let c = mixed.advance(&*opt, 90).unwrap();
            assert_eq!(a.energy.to_bits(), c.energy.to_bits(), "{kind} mixed");
            assert_eq!(a.evaluations, c.evaluations, "{kind} mixed");
        }
    }

    #[test]
    fn advance_batched_works_on_tensor_network_backend() {
        let graph = Graph::erdos_renyi(6, 0.4, 21);
        let eval = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let opt = optim::Spsa::default();
        let mut batched = eval.begin_training(&ansatz, &opt, None, 40).unwrap();
        assert!(!batched.uses_compiled_scratch());
        let b = batched.advance_batched(&opt, 40).unwrap();
        let mut scalar = eval.begin_training(&ansatz, &opt, None, 40).unwrap();
        let a = scalar.advance(&opt, 40).unwrap();
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn advance_batched_depth_zero_is_one_evaluation() {
        let graph = Graph::cycle(4);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&graph, 0, Mixer::baseline());
        let opt = CobylaOptimizer::default();
        let mut session = eval.begin_training(&ansatz, &opt, None, 10).unwrap();
        let t = session.advance_batched(&opt, 10).unwrap();
        assert!((t.energy - 2.0).abs() < 1e-10);
        assert_eq!(session.evaluations(), 1);
        session.advance_batched(&opt, 50).unwrap();
        assert_eq!(session.evaluations(), 1);
    }

    #[test]
    fn for_problem_rejects_size_mismatch() {
        let graph = Graph::cycle(5);
        let other = Problem::max_cut(&Graph::cycle(6));
        assert!(matches!(
            EnergyEvaluator::for_problem(&graph, other, Backend::StateVector),
            Err(QaoaError::ProblemSizeMismatch { .. })
        ));
    }

    #[test]
    fn sk_ratio_uses_the_shifted_convention() {
        let graph = Graph::erdos_renyi(6, 0.5, 8);
        let problem = Problem::sherrington_kirkpatrick(&graph, 8);
        let eval =
            EnergyEvaluator::for_problem(&graph, problem.clone(), Backend::StateVector).unwrap();
        let sol = eval.classical_solution();
        // The ratio of the optimum itself is 1, of the pessimum 0 — well
        // defined even though the raw optimum may be negative.
        assert!((eval.approx_ratio(sol.best) - 1.0).abs() < 1e-12);
        assert!(eval.approx_ratio(sol.worst).abs() < 1e-12);
        let mid = 0.5 * (sol.best + sol.worst);
        let r = eval.approx_ratio(mid);
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tensor_network_backend_trains_too() {
        let graph = Graph::erdos_renyi(6, 0.4, 21);
        let eval = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let trained = eval
            .train(&ansatz, &CobylaOptimizer::default(), 100)
            .unwrap();
        let half = 0.5 * graph.total_weight();
        assert!(
            trained.energy >= half - 1e-9,
            "training should beat the plus state"
        );
    }
}
