//! Closed-form p = 1 QAOA energies for Max-Cut with the standard RX mixer.
//!
//! For depth-1 QAOA on an unweighted graph with the transverse-field mixer
//! `e^{-iβ Σ X}` and cost layer `e^{-iγ C}`, the expected cut of an edge
//! `(u, v)` has a known closed form (Wang et al., "Quantum approximate
//! optimization algorithm for MaxCut: a fermionic view"; also derived in the
//! QAOA literature the paper builds on):
//!
//! ```text
//! ⟨C_uv⟩ = 1/2 + 1/4 sin(4β) sin(γ) (cos^d γ + cos^e γ)
//!          − 1/4 sin²(2β) cos^{d+e−2f} γ (1 − cos^f (2γ))
//! ```
//!
//! where `d = deg(u) − 1`, `e = deg(v) − 1` and `f` is the number of common
//! neighbours of `u` and `v` (triangles through the edge). This module
//! provides that formula as an independent oracle: it lets the test-suite and
//! the benches validate both simulator backends on 10-node instances *without*
//! trusting either simulator, and it gives a cheap initial-angle heuristic for
//! the evaluator.
//!
//! The formula assumes the **baseline RX mixer with the `2β` convention used
//! throughout this repository** (mixer gate `RX(2β)`, cost gate `RZZ(2γ)`),
//! matching [`crate::mixer::Mixer::baseline`] and
//! [`crate::ansatz::QaoaAnsatz`].

use graphs::Graph;

/// Closed-form ⟨C_uv⟩ for one edge at p = 1 with the baseline RX mixer.
///
/// `degree_u`/`degree_v` are the full degrees of the endpoints and
/// `common_neighbors` the number of triangles through the edge.
pub fn edge_expectation_p1(
    gamma: f64,
    beta: f64,
    degree_u: usize,
    degree_v: usize,
    common_neighbors: usize,
) -> f64 {
    let d = degree_u.saturating_sub(1) as i32;
    let e = degree_v.saturating_sub(1) as i32;
    let f = common_neighbors as i32;
    // Convention mapping: this repository's ansatz applies RZZ(2γ) = e^{-iγZZ}
    // per edge and RX(2β) = e^{-iβX} per qubit, whereas the literature formula
    // is written for e^{-iγ_std C} with C = Σ (1 − ZZ)/2 and mixer e^{-iβ ΣX}.
    // Matching the two gives γ_std = −2γ and β_std = β (verified against the
    // single-edge case, where ⟨C⟩ = 1/2 − sin(4β) sin(2γ)/2).
    let gamma = -2.0 * gamma;
    let term1 =
        0.25 * (4.0 * beta).sin() * gamma.sin() * (gamma.cos().powi(d) + gamma.cos().powi(e));
    let term2 = 0.25
        * (2.0 * beta).sin().powi(2)
        * gamma.cos().powi(d + e - 2 * f)
        * (1.0 - (2.0 * gamma).cos().powi(f));
    0.5 + term1 - term2
}

/// Number of common neighbours of `u` and `v` in `graph`.
pub fn common_neighbors(graph: &Graph, u: usize, v: usize) -> usize {
    let neigh_u: std::collections::BTreeSet<usize> =
        graph.neighbors(u).iter().map(|&(w, _)| w).collect();
    graph
        .neighbors(v)
        .iter()
        .filter(|&&(w, _)| neigh_u.contains(&w))
        .count()
}

/// Closed-form p = 1 Max-Cut energy for the whole (unweighted) graph with the
/// baseline RX mixer. Edge weights are honoured linearly (each edge's
/// contribution is scaled by its weight), which is exact for uniformly
/// weighted graphs and a controlled approximation otherwise.
pub fn maxcut_energy_p1(graph: &Graph, gamma: f64, beta: f64) -> f64 {
    graph
        .edges()
        .iter()
        .map(|e| {
            let f = common_neighbors(graph, e.u, e.v);
            e.weight * edge_expectation_p1(gamma, beta, graph.degree(e.u), graph.degree(e.v), f)
        })
        .sum()
}

/// Coarse grid search over the closed form, returning `(gamma, beta, energy)`.
/// Useful as a warm start for the variational optimizer at p = 1.
pub fn best_p1_angles_by_grid(graph: &Graph, resolution: usize) -> (f64, f64, f64) {
    let resolution = resolution.max(2);
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for i in 0..resolution {
        // γ ∈ (0, π), β ∈ (0, π/2): the relevant period for unweighted Max-Cut.
        let gamma = std::f64::consts::PI * (i as f64 + 0.5) / resolution as f64;
        for j in 0..resolution {
            let beta = std::f64::consts::FRAC_PI_2 * (j as f64 + 0.5) / resolution as f64;
            let e = maxcut_energy_p1(graph, gamma, beta);
            if e > best.2 {
                best = (gamma, beta, e);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::QaoaAnsatz;
    use crate::energy::EnergyEvaluator;
    use crate::mixer::Mixer;
    use crate::Backend;

    #[test]
    fn zero_angles_give_half_per_edge() {
        assert!((edge_expectation_p1(0.0, 0.0, 3, 4, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn common_neighbors_counts_triangles() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(common_neighbors(&g, 0, 1), 1);
        assert_eq!(common_neighbors(&g, 0, 3), 0);
    }

    #[test]
    fn closed_form_matches_simulator_on_cycle() {
        // Every edge of a cycle has d = e = 1, f = 0.
        let g = Graph::cycle(8);
        let eval = EnergyEvaluator::new(&g, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
        for (gamma, beta) in [(0.3, 0.2), (0.7, 0.5), (1.1, 0.9), (2.0, 1.3)] {
            let analytic = maxcut_energy_p1(&g, gamma, beta);
            let simulated = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
            assert!(
                (analytic - simulated).abs() < 1e-9,
                "γ={gamma}, β={beta}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn closed_form_matches_simulator_on_er_graphs() {
        for seed in 0..4 {
            let g = Graph::connected_erdos_renyi(8, 0.45, seed, 50);
            let eval = EnergyEvaluator::new(&g, Backend::StateVector);
            let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
            for (gamma, beta) in [(0.4, 0.3), (0.9, 0.6)] {
                let analytic = maxcut_energy_p1(&g, gamma, beta);
                let simulated = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
                assert!(
                    (analytic - simulated).abs() < 1e-8,
                    "seed {seed}, γ={gamma}, β={beta}: analytic {analytic} vs simulated {simulated}"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_simulator_on_regular_graphs() {
        let g = Graph::random_regular(10, 4, 7).unwrap();
        let eval = EnergyEvaluator::new(&g, Backend::TensorNetwork);
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
        let (gamma, beta) = (0.55, 0.35);
        let analytic = maxcut_energy_p1(&g, gamma, beta);
        let simulated = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
        assert!((analytic - simulated).abs() < 1e-8);
    }

    #[test]
    fn grid_warm_start_beats_plus_state() {
        let g = Graph::random_regular(10, 4, 3).unwrap();
        let (gamma, beta, energy) = best_p1_angles_by_grid(&g, 24);
        assert!(
            energy > 0.5 * g.total_weight() + 0.5,
            "grid energy {energy}"
        );
        // And the simulator agrees that those angles are good.
        let eval = EnergyEvaluator::new(&g, Backend::StateVector);
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
        let simulated = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
        assert!((simulated - energy).abs() < 1e-8);
    }
}
