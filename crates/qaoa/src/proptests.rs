//! Property-based tests for the QAOA machinery.

use crate::ansatz::QaoaAnsatz;
use crate::backend::Backend;
use crate::energy::EnergyEvaluator;
use crate::mixer::Mixer;
use graphs::Graph;
use proptest::prelude::*;
use qcircuit::Gate;

fn arb_mixer() -> impl Strategy<Value = Mixer> {
    let gate = prop_oneof![
        Just(Gate::RX),
        Just(Gate::RY),
        Just(Gate::RZ),
        Just(Gate::H),
        Just(Gate::P),
    ];
    proptest::collection::vec(gate, 1..4).prop_map(|gates| Mixer::new(gates).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn energy_is_within_maxcut_bounds(
        seed in 0u64..500,
        p in 1usize..3,
        mixer in arb_mixer(),
        angles in proptest::collection::vec(-1.5f64..1.5, 6),
    ) {
        let graph = Graph::connected_erdos_renyi(6, 0.5, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let ansatz = QaoaAnsatz::new(&graph, p, mixer);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let gammas = &angles[..p];
        let betas = &angles[p..2 * p];
        let e = eval.energy(&ansatz, gammas, betas).unwrap();
        prop_assert!(e >= -1e-9, "energy {e} negative");
        prop_assert!(e <= graph.total_weight() + 1e-9, "energy {e} above total weight");
        // And never above the true optimum.
        prop_assert!(e <= eval.classical_optimum() + 1e-9);
    }

    #[test]
    fn backends_agree_on_random_mixers(
        seed in 0u64..200,
        mixer in arb_mixer(),
        gamma in -1.5f64..1.5,
        beta in -1.5f64..1.5,
    ) {
        let graph = Graph::connected_erdos_renyi(6, 0.4, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let ansatz = QaoaAnsatz::new(&graph, 1, mixer);
        let sv = EnergyEvaluator::new(&graph, Backend::StateVector);
        let tn = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let e_sv = sv.energy(&ansatz, &[gamma], &[beta]).unwrap();
        let e_tn = tn.energy(&ansatz, &[gamma], &[beta]).unwrap();
        prop_assert!((e_sv - e_tn).abs() < 1e-8, "sv {e_sv} vs tn {e_tn}");
    }

    #[test]
    fn backends_agree_on_random_problem_instances(
        seed in 0u64..200,
        kind_index in 0usize..5,
        mixer in arb_mixer(),
        gamma in -1.5f64..1.5,
        beta in -1.5f64..1.5,
    ) {
        let graph = Graph::connected_erdos_renyi(6, 0.4, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let problem = graphs::ProblemKind::all(seed)[kind_index].instantiate(&graph);
        let ansatz = QaoaAnsatz::for_problem(&problem, 1, mixer).unwrap();
        let circuit = ansatz.bind(&[gamma], &[beta]).unwrap();
        let e_sv = Backend::StateVector.expectation(&circuit, &problem).unwrap();
        let e_tn = Backend::TensorNetwork.expectation(&circuit, &problem).unwrap();
        // Relative tolerance: partition instances reach energies ~1e4.
        let tol = 1e-8 * (1.0 + e_sv.abs());
        prop_assert!(
            (e_sv - e_tn).abs() < tol,
            "{}: sv {e_sv} vs tn {e_tn}", problem.name()
        );
        // Expectations always sit inside the exact classical bracket.
        let exact = problem.brute_force().unwrap();
        prop_assert!(e_sv <= exact.best_value + tol, "{}", problem.name());
        prop_assert!(e_sv >= exact.worst_value - tol, "{}", problem.name());
    }

    #[test]
    fn diagonal_only_mixer_keeps_plus_state_energy(
        seed in 0u64..200,
        gamma in -1.5f64..1.5,
        beta in -1.5f64..1.5,
    ) {
        // A non-mixing (diagonal) mixer cannot change the energy away from
        // the |+>^n value of half the total weight.
        let graph = Graph::connected_erdos_renyi(5, 0.5, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let mixer = Mixer::new(vec![Gate::RZ, Gate::P]).unwrap();
        let ansatz = QaoaAnsatz::new(&graph, 1, mixer);
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let e = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
        prop_assert!((e - 0.5 * graph.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn compiled_fast_path_matches_bind_path_and_tensornet(
        seed in 0u64..200,
        p in 1usize..3,
        mixer in arb_mixer(),
        angles in proptest::collection::vec(-1.5f64..1.5, 4),
    ) {
        // The compiled objective (fused cost layers, scratch reuse) must be
        // numerically indistinguishable from binding the template and
        // simulating instruction by instruction — and from the independent
        // tensor-network backend.
        let graph = Graph::connected_erdos_renyi(6, 0.5, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let ansatz = QaoaAnsatz::new(&graph, p, mixer);
        let sv = EnergyEvaluator::new(&graph, Backend::StateVector);
        let params = &angles[..2 * p];
        let compiled = sv.compile(&ansatz).unwrap();
        let fast = compiled.energy_flat(params).unwrap();
        let slow = sv.energy_flat(&ansatz, params).unwrap();
        prop_assert!((fast - slow).abs() < 1e-10, "fast {fast} vs slow {slow}");
        let tn = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let e_tn = tn.energy_flat(&ansatz, params).unwrap();
        prop_assert!((fast - e_tn).abs() < 1e-8, "fast {fast} vs tn {e_tn}");
    }

    #[test]
    fn compiled_fast_path_is_reusable_across_calls(
        seed in 0u64..100,
        angle_sets in proptest::collection::vec((-1.5f64..1.5, -1.5f64..1.5), 1..5),
    ) {
        // Scratch-state reuse must not leak state between evaluations.
        let graph = Graph::connected_erdos_renyi(5, 0.5, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::qnas());
        let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
        let compiled = eval.compile(&ansatz).unwrap();
        for &(gamma, beta) in &angle_sets {
            let fast = compiled.energy_flat(&[gamma, beta]).unwrap();
            let slow = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
            prop_assert!((fast - slow).abs() < 1e-10);
        }
    }

    #[test]
    fn approx_ratio_is_in_unit_interval(
        seed in 0u64..200,
        gamma in -1.0f64..1.0,
        beta in -1.0f64..1.0,
    ) {
        let graph = Graph::connected_erdos_renyi(6, 0.5, seed, 20);
        prop_assume!(graph.num_edges() > 0);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::qnas());
        let eval = EnergyEvaluator::new(&graph, Backend::TensorNetwork);
        let e = eval.energy(&ansatz, &[gamma], &[beta]).unwrap();
        let r = eval.approx_ratio(e);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&r), "ratio {r}");
    }
}
