//! # qaoa — QAOA ansatz assembly and energy evaluation
//!
//! The driver application of QArchSearch is the Quantum Approximate
//! Optimization Algorithm for Max-Cut. This crate provides:
//!
//! * [`mixer::Mixer`] — a description of a mixer layer as a sequence of
//!   single-qubit gates applied to every node (the object the architecture
//!   search optimizes). The paper's baseline is the standard `RX(2β)` mixer;
//!   the searched winner is `RX(2β)·RY(2β)` (Fig. 6). All parameterized gates
//!   in a mixer share the same `β`, "and hence do not incur additional
//!   computational cost" (Fig. 7 caption).
//! * [`ansatz::QaoaAnsatz`] — assembly of the depth-`p` alternating ansatz
//!   `Π_k e^{-iβ_k B} e^{-iγ_k C}` applied to `|+⟩^⊗n` for a given graph and
//!   mixer.
//! * [`Backend`] — selection between the dense state-vector backend and the
//!   tensor-network (QTensor-analog) backend for energy evaluation.
//! * [`energy::EnergyEvaluator`] — the expectation ⟨γ,β|C|γ,β⟩, its
//!   maximization with a classical optimizer, and approximation-ratio
//!   computation (Eq. 3 of the paper). Training can run in one shot
//!   ([`energy::EnergyEvaluator::train`]) or as a checkpointable
//!   [`energy::TrainingSession`] that the search pipeline advances in
//!   successive-halving rungs, optionally warm-started from a shallower
//!   depth via [`ansatz::QaoaAnsatz::warm_start_flat`].
//!
//! ```
//! use graphs::Graph;
//! use qaoa::{ansatz::QaoaAnsatz, mixer::Mixer, Backend, energy::EnergyEvaluator};
//!
//! let graph = Graph::cycle(4);
//! let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
//! let eval = EnergyEvaluator::new(&graph, Backend::StateVector);
//! // γ = β = 0 leaves the uniform superposition: every edge cut with prob. 1/2.
//! let e = eval.energy(&ansatz, &[0.0], &[0.0]).unwrap();
//! assert!((e - 2.0).abs() < 1e-10);
//! ```

pub mod analytic;
pub mod ansatz;
pub mod backend;
pub mod energy;
pub mod error;
pub mod mixer;

pub use backend::Backend;
pub use energy::{BatchScratch, EnergyEvaluator, ProgressHook, TrainingProgress, TrainingSession};
pub use error::QaoaError;

#[cfg(test)]
mod proptests;
