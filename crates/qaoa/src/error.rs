//! Error types for QAOA construction and evaluation.

use thiserror::Error;

/// Errors raised while assembling or evaluating QAOA ansätze.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum QaoaError {
    /// The number of supplied angles does not match the ansatz depth.
    #[error("expected {expected} {kind} angles for depth-{depth} QAOA but got {got}")]
    WrongParameterCount {
        /// "gamma" or "beta".
        kind: String,
        /// Ansatz depth.
        depth: usize,
        /// Expected number of angles.
        expected: usize,
        /// Supplied number of angles.
        got: usize,
    },

    /// The mixer layer contains no gates.
    #[error("mixer layer must contain at least one gate")]
    EmptyMixer,

    /// A simulator backend failed.
    #[error("backend error: {message}")]
    Backend {
        /// Human-readable backend error.
        message: String,
    },

    /// The graph has no edges, so the Max-Cut objective is degenerate.
    #[error("graph has no edges; the Max-Cut objective is identically zero")]
    EmptyGraph,
}
