//! Error types for QAOA construction and evaluation.

use thiserror::Error;

/// Errors raised while assembling or evaluating QAOA ansätze.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum QaoaError {
    /// The number of supplied angles does not match the ansatz depth.
    #[error("expected {expected} {kind} angles for depth-{depth} QAOA but got {got}")]
    WrongParameterCount {
        /// "gamma" or "beta".
        kind: String,
        /// Ansatz depth.
        depth: usize,
        /// Expected number of angles.
        expected: usize,
        /// Supplied number of angles.
        got: usize,
    },

    /// The mixer layer contains no gates.
    #[error("mixer layer must contain at least one gate")]
    EmptyMixer,

    /// A simulator backend failed.
    #[error("backend error: {message}")]
    Backend {
        /// Human-readable backend error.
        message: String,
    },

    /// The cost Hamiltonian has no terms (for Max-Cut: the graph has no
    /// edges), so the objective is a constant.
    #[error("cost Hamiltonian has no terms; the objective is constant")]
    EmptyGraph,

    /// A cost term acts on more spins than the RZ/RZZ cost layer can
    /// realize.
    #[error("cost term of locality {locality} cannot be lowered to the RZ/RZZ cost layer (max 2)")]
    UnsupportedLocality {
        /// Number of spins in the offending term.
        locality: usize,
    },

    /// A problem's spin count does not match the graph it is evaluated with.
    #[error("problem '{name}' has {problem_spins} spins but the graph has {graph_nodes} nodes")]
    ProblemSizeMismatch {
        /// Problem name.
        name: String,
        /// Spins in the problem Hamiltonian.
        problem_spins: usize,
        /// Nodes in the graph.
        graph_nodes: usize,
    },
}
