//! Assembly of the depth-`p` QAOA ansatz for a cost problem and a mixer.
//!
//! The ansatz is `|γ,β⟩ = e^{-iβ_p B} e^{-iγ_p C} … e^{-iβ_1 B} e^{-iγ_1 C} |s⟩`
//! (Eq. 2 of the paper), with `|s⟩ = |+⟩^⊗n`, the cost layer built from the
//! diagonal terms of a [`Problem`] (one `RZZ` per 2-local term, one `RZ` per
//! 1-local term — for Max-Cut exactly `Π_{(u,v)∈E} RZZ(2 w_uv γ)`) and the
//! mixer layer supplied by a [`Mixer`]. Parameters are named `gamma_k` /
//! `beta_k` so a single circuit template can be rebound at every optimizer
//! step.

use crate::error::QaoaError;
use crate::mixer::Mixer;
use graphs::{Graph, Problem};
use qcircuit::{Circuit, Gate, Parameter};

/// A depth-`p` QAOA ansatz template for one cost problem and one mixer
/// choice.
#[derive(Debug, Clone)]
pub struct QaoaAnsatz {
    template: Circuit,
    depth: usize,
    mixer: Mixer,
    num_qubits: usize,
}

impl QaoaAnsatz {
    /// Build the parameterized template circuit for the Max-Cut problem of
    /// `graph` (the paper's driver application). Shorthand for
    /// [`QaoaAnsatz::for_problem`] with [`Problem::max_cut`].
    pub fn new(graph: &Graph, depth: usize, mixer: Mixer) -> QaoaAnsatz {
        Self::for_problem(&Problem::max_cut(graph), depth, mixer)
            .expect("Max-Cut terms are 2-local")
    }

    /// Build the parameterized template circuit for an arbitrary diagonal
    /// cost [`Problem`].
    ///
    /// Each cost layer lowers the problem's terms in order: a 2-local term
    /// `c·z_u z_v` becomes `RZZ(−4c·γ_k)` on `(u, v)` and a 1-local term
    /// `c·z_u` becomes `RZ(−4c·γ_k)` on `u` — one consistent γ scale across
    /// localities, which for a Max-Cut edge (`c = −w/2`) reproduces the
    /// paper's `RZZ(2wγ)` exactly. Constant terms are global phases and are
    /// dropped. Terms of locality ≥ 3 cannot be realized by this gate set
    /// and yield [`QaoaError::UnsupportedLocality`].
    pub fn for_problem(
        problem: &Problem,
        depth: usize,
        mixer: Mixer,
    ) -> Result<QaoaAnsatz, QaoaError> {
        let n = problem.num_spins();
        let mut c = Circuit::new(n);
        c.h_layer();
        for k in 0..depth {
            // Cost layer: one diagonal rotation per term.
            let gamma_name = format!("gamma_{k}");
            for t in problem.terms() {
                let multiplier = -4.0 * t.coeff();
                match *t.qubits() {
                    [] => {}
                    [q] => {
                        c.push(Gate::RZ, &[q], Parameter::free(&gamma_name, multiplier));
                    }
                    [u, v] => {
                        c.push(Gate::RZZ, &[u, v], Parameter::free(&gamma_name, multiplier));
                    }
                    _ => {
                        return Err(QaoaError::UnsupportedLocality {
                            locality: t.locality(),
                        })
                    }
                }
            }
            // Mixer layer: shared β_k.
            let beta_name = format!("beta_{k}");
            mixer.append_layer(&mut c, &beta_name);
        }
        Ok(QaoaAnsatz {
            template: c,
            depth,
            mixer,
            num_qubits: n,
        })
    }

    /// The unbound template circuit.
    pub fn template(&self) -> &Circuit {
        &self.template
    }

    /// Ansatz depth `p`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The mixer used by this ansatz.
    pub fn mixer(&self) -> &Mixer {
        &self.mixer
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of variational parameters (`2p`: one γ and one β per layer).
    pub fn num_parameters(&self) -> usize {
        2 * self.depth
    }

    /// The paper-style small-angle initial point in flat layout
    /// `[γ_0..γ_{p-1}, β_0..β_{p-1}]`: every γ starts at 0.1 and every β at
    /// 0.2 (γ and β on different scales is a common QAOA warm-start
    /// heuristic).
    pub fn default_initial_flat(&self) -> Vec<f64> {
        let p = self.depth;
        let mut initial = vec![0.1; 2 * p];
        for b in initial.iter_mut().skip(p) {
            *b = 0.2;
        }
        initial
    }

    /// A warm-started flat initial point that transfers trained angles from
    /// a shallower (typically depth `p − 1`) result: layers `0..m` reuse the
    /// given angles (`m = min(prev depth, p)`), and any remaining layers
    /// start at the small-angle default of
    /// [`default_initial_flat`](Self::default_initial_flat).
    ///
    /// This is the per-layer parameter reuse the search pipeline applies
    /// when it moves from depth `p − 1` to depth `p`: a depth-`p` ansatz can
    /// represent every depth-`p − 1` state by zeroing its last layer, so
    /// starting from the shallower optimum cuts iterations-to-convergence
    /// substantially compared to restarting from scratch.
    pub fn warm_start_flat(&self, prev_gammas: &[f64], prev_betas: &[f64]) -> Vec<f64> {
        let p = self.depth;
        let mut initial = self.default_initial_flat();
        let m = prev_gammas.len().min(prev_betas.len()).min(p);
        initial[..m].copy_from_slice(&prev_gammas[..m]);
        initial[p..p + m].copy_from_slice(&prev_betas[..m]);
        initial
    }

    /// Bind explicit angle vectors (`gammas.len() == betas.len() == p`).
    pub fn bind(&self, gammas: &[f64], betas: &[f64]) -> Result<Circuit, QaoaError> {
        if gammas.len() != self.depth {
            return Err(QaoaError::WrongParameterCount {
                kind: "gamma".to_string(),
                depth: self.depth,
                expected: self.depth,
                got: gammas.len(),
            });
        }
        if betas.len() != self.depth {
            return Err(QaoaError::WrongParameterCount {
                kind: "beta".to_string(),
                depth: self.depth,
                expected: self.depth,
                got: betas.len(),
            });
        }
        let mut assignments: Vec<(String, f64)> = Vec::with_capacity(2 * self.depth);
        for (k, &g) in gammas.iter().enumerate() {
            assignments.push((format!("gamma_{k}"), g));
        }
        for (k, &b) in betas.iter().enumerate() {
            assignments.push((format!("beta_{k}"), b));
        }
        let refs: Vec<(&str, f64)> = assignments.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        self.template.bind(&refs).map_err(|e| QaoaError::Backend {
            message: e.to_string(),
        })
    }

    /// Bind a flat parameter vector laid out as `[γ_0..γ_{p-1}, β_0..β_{p-1}]`
    /// — the layout the classical optimizers work with.
    pub fn bind_flat(&self, params: &[f64]) -> Result<Circuit, QaoaError> {
        if params.len() != self.num_parameters() {
            return Err(QaoaError::WrongParameterCount {
                kind: "flat".to_string(),
                depth: self.depth,
                expected: self.num_parameters(),
                got: params.len(),
            });
        }
        let (gammas, betas) = params.split_at(self.depth);
        self.bind(gammas, betas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_has_expected_structure() {
        let g = Graph::cycle(4); // 4 nodes, 4 edges
        let ansatz = QaoaAnsatz::new(&g, 2, Mixer::baseline());
        // H layer (4) + per layer: 4 RZZ + 4 RX = 8; two layers -> 16; total 20.
        assert_eq!(ansatz.template().len(), 20);
        assert_eq!(ansatz.num_parameters(), 4);
        assert_eq!(
            ansatz.template().free_parameters(),
            vec!["beta_0", "beta_1", "gamma_0", "gamma_1"]
        );
    }

    #[test]
    fn bind_produces_fully_bound_circuit() {
        let g = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::qnas());
        let bound = ansatz.bind(&[0.4], &[0.2]).unwrap();
        assert!(bound.free_parameters().is_empty());
        assert_eq!(bound.num_qubits(), 3);
    }

    #[test]
    fn bind_checks_lengths() {
        let g = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&g, 2, Mixer::baseline());
        assert!(matches!(
            ansatz.bind(&[0.1], &[0.1, 0.2]),
            Err(QaoaError::WrongParameterCount { .. })
        ));
        assert!(matches!(
            ansatz.bind_flat(&[0.1, 0.2, 0.3]),
            Err(QaoaError::WrongParameterCount { .. })
        ));
        assert!(ansatz.bind_flat(&[0.1, 0.2, 0.3, 0.4]).is_ok());
    }

    #[test]
    fn cost_layer_scales_with_edge_weight() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 2.5)]).unwrap();
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
        let bound = ansatz.bind(&[1.0], &[0.0]).unwrap();
        // Find the RZZ instruction: its bound angle must be 2 * w * γ = 5.0.
        let rzz = bound
            .instructions()
            .iter()
            .find(|i| i.gate == Gate::RZZ)
            .expect("cost layer present");
        assert_eq!(rzz.parameter, Parameter::Bound(5.0));
    }

    #[test]
    fn depth_zero_is_just_the_plus_state() {
        let g = Graph::cycle(4);
        let ansatz = QaoaAnsatz::new(&g, 0, Mixer::baseline());
        assert_eq!(ansatz.template().len(), 4); // only the H layer
        assert_eq!(ansatz.num_parameters(), 0);
        assert!(ansatz.bind(&[], &[]).is_ok());
    }

    #[test]
    fn default_initial_flat_uses_two_scales() {
        let g = Graph::cycle(4);
        let ansatz = QaoaAnsatz::new(&g, 3, Mixer::baseline());
        let init = ansatz.default_initial_flat();
        assert_eq!(init.len(), 6);
        assert_eq!(&init[..3], &[0.1, 0.1, 0.1]);
        assert_eq!(&init[3..], &[0.2, 0.2, 0.2]);
    }

    #[test]
    fn warm_start_reuses_shallower_layers_and_pads_the_rest() {
        let g = Graph::cycle(4);
        let ansatz = QaoaAnsatz::new(&g, 3, Mixer::baseline());
        let init = ansatz.warm_start_flat(&[0.7, -0.3], &[0.5, 0.9]);
        assert_eq!(init, vec![0.7, -0.3, 0.1, 0.5, 0.9, 0.2]);
    }

    #[test]
    fn warm_start_truncates_deeper_sources() {
        let g = Graph::cycle(4);
        let ansatz = QaoaAnsatz::new(&g, 1, Mixer::baseline());
        let init = ansatz.warm_start_flat(&[0.7, -0.3, 0.2], &[0.5, 0.9, 0.4]);
        assert_eq!(init, vec![0.7, 0.5]);
    }

    #[test]
    fn warm_start_with_empty_source_is_the_default() {
        let g = Graph::cycle(4);
        let ansatz = QaoaAnsatz::new(&g, 2, Mixer::baseline());
        assert_eq!(
            ansatz.warm_start_flat(&[], &[]),
            ansatz.default_initial_flat()
        );
    }

    #[test]
    fn for_problem_maxcut_reproduces_the_graph_ansatz_exactly() {
        let g = Graph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 2.5), (0, 3, 0.75)]).unwrap();
        let legacy = QaoaAnsatz::new(&g, 2, Mixer::qnas());
        let generic = QaoaAnsatz::for_problem(&Problem::max_cut(&g), 2, Mixer::qnas()).unwrap();
        assert_eq!(legacy.template().len(), generic.template().len());
        for (a, b) in legacy
            .template()
            .instructions()
            .iter()
            .zip(generic.template().instructions())
        {
            assert_eq!(a.gate, b.gate);
            assert_eq!(a.qubits, b.qubits);
            assert_eq!(a.parameter, b.parameter);
        }
    }

    #[test]
    fn for_problem_lowers_fields_to_rz() {
        let g = Graph::cycle(4);
        let sk = Problem::sherrington_kirkpatrick(&g, 3);
        let ansatz = QaoaAnsatz::for_problem(&sk, 1, Mixer::baseline()).unwrap();
        let rz = ansatz
            .template()
            .instructions()
            .iter()
            .filter(|i| i.gate == Gate::RZ)
            .count();
        let rzz = ansatz
            .template()
            .instructions()
            .iter()
            .filter(|i| i.gate == Gate::RZZ)
            .count();
        assert_eq!(rzz, 6, "all-to-all couplings on 4 spins");
        assert!(rz > 0, "fields must appear as RZ gates");
        // All cost gates share one gamma parameter per layer.
        assert_eq!(
            ansatz.template().free_parameters(),
            vec!["beta_0".to_string(), "gamma_0".to_string()]
        );
    }

    #[test]
    fn for_problem_rejects_high_locality_terms() {
        use graphs::{CostTerm, RatioConvention};
        let cubic = Problem::from_terms(
            "3local",
            3,
            0.0,
            vec![CostTerm::new(vec![0, 1, 2], 1.0)],
            RatioConvention::RatioToOptimum,
        )
        .unwrap();
        assert!(matches!(
            QaoaAnsatz::for_problem(&cubic, 1, Mixer::baseline()),
            Err(QaoaError::UnsupportedLocality { locality: 3 })
        ));
    }

    #[test]
    fn mixer_beta_shared_within_layer_but_not_across_layers() {
        let g = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&g, 3, Mixer::baseline());
        let params = ansatz.template().free_parameters();
        assert!(params.contains(&"beta_0".to_string()));
        assert!(params.contains(&"beta_2".to_string()));
        assert_eq!(params.len(), 6);
    }
}
