//! Simulator backend selection.
//!
//! QArchSearch evaluates candidate circuits with the QTensor tensor-network
//! simulator; the paper lists GPU statevector simulation as future work. This
//! crate keeps both options behind one enum so the evaluator, the search
//! schedulers and the benches can switch freely (and so the
//! `backend_compare` ablation bench can quantify the difference).

use crate::error::QaoaError;
use graphs::Problem;
use qcircuit::Circuit;
use serde::{Deserialize, Serialize};

/// Which simulator evaluates circuit expectation values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Backend {
    /// Dense state-vector simulation (exact, memory ∝ 2^n).
    StateVector,
    /// Tensor-network contraction with per-edge light cones (QTensor analog).
    /// Edges are contracted in parallel — the inner level of the paper's
    /// two-level parallelization.
    #[default]
    TensorNetwork,
    /// Tensor-network contraction with sequential edge evaluation (used by
    /// the two-level parallelization ablation).
    TensorNetworkSequential,
}

impl Backend {
    /// All backends, for benches and tests.
    pub fn all() -> &'static [Backend] {
        &[
            Backend::StateVector,
            Backend::TensorNetwork,
            Backend::TensorNetworkSequential,
        ]
    }

    /// Energy ⟨C⟩ of a fully-bound circuit for an arbitrary diagonal cost
    /// [`Problem`] — the problem-generic entry point every layer routes
    /// through.
    ///
    /// Callers that evaluate many circuits against one objective should
    /// build the [`Problem`] once and reuse it (as
    /// [`crate::energy::EnergyEvaluator`] does): the term list plays the
    /// role a cached edge list used to, without a per-call rebuild.
    pub fn expectation(&self, circuit: &Circuit, problem: &Problem) -> Result<f64, QaoaError> {
        let backend_err = |message: String| QaoaError::Backend { message };
        match self {
            Backend::StateVector => {
                let state = statevec::StateVector::from_circuit(circuit)
                    .map_err(|e| backend_err(e.to_string()))?;
                Ok(statevec::expectation::problem_expectation(&state, problem))
            }
            Backend::TensorNetwork => tensornet::lightcone::problem_expectation(circuit, problem)
                .map_err(|e| backend_err(e.to_string())),
            Backend::TensorNetworkSequential => {
                tensornet::lightcone::problem_expectation_sequential(circuit, problem)
                    .map_err(|e| backend_err(e.to_string()))
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Backend::StateVector => "statevector",
            Backend::TensorNetwork => "tensor-network",
            Backend::TensorNetworkSequential => "tensor-network-sequential",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for Backend {
    type Err = graphs::ParseKindError;

    /// Parse a backend name. Round-trips with [`Display`](std::fmt::Display);
    /// the short aliases `sv`, `tn` and `tns` are also accepted.
    fn from_str(spec: &str) -> Result<Backend, Self::Err> {
        match spec {
            "statevector" | "sv" => Ok(Backend::StateVector),
            "tensor-network" | "tn" => Ok(Backend::TensorNetwork),
            "tensor-network-sequential" | "tns" => Ok(Backend::TensorNetworkSequential),
            other => Err(graphs::ParseKindError::new(
                "backend",
                other,
                "statevector, tensor-network, tensor-network-sequential",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::QaoaAnsatz;
    use crate::mixer::Mixer;
    use graphs::Graph;

    #[test]
    fn backends_agree_on_qaoa_energy() {
        let graph = Graph::erdos_renyi(6, 0.5, 11);
        let problem = Problem::max_cut(&graph);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let circuit = ansatz.bind(&[0.4, 0.7], &[0.3, 0.1]).unwrap();
        let sv = Backend::StateVector
            .expectation(&circuit, &problem)
            .unwrap();
        let tn = Backend::TensorNetwork
            .expectation(&circuit, &problem)
            .unwrap();
        let tns = Backend::TensorNetworkSequential
            .expectation(&circuit, &problem)
            .unwrap();
        assert!((sv - tn).abs() < 1e-8, "sv {sv} vs tn {tn}");
        assert!((tn - tns).abs() < 1e-12);
    }

    #[test]
    fn backends_agree_on_every_shipped_problem() {
        let graph = Graph::erdos_renyi(6, 0.5, 4);
        for kind in graphs::ProblemKind::all(13) {
            let problem = kind.instantiate(&graph);
            let ansatz = QaoaAnsatz::for_problem(&problem, 1, Mixer::qnas()).unwrap();
            let circuit = ansatz.bind(&[0.35], &[0.2]).unwrap();
            let sv = Backend::StateVector
                .expectation(&circuit, &problem)
                .unwrap();
            let tn = Backend::TensorNetwork
                .expectation(&circuit, &problem)
                .unwrap();
            assert!(
                (sv - tn).abs() < 1e-8,
                "{}: sv {sv} vs tn {tn}",
                problem.name()
            );
        }
    }

    #[test]
    fn edge_list_problem_matches_graph_problem_bitwise() {
        // The successor of the removed maxcut_expectation[_with_edges]
        // wrappers: a Problem built from an explicit edge list routes
        // through the same generic path as one built from the graph.
        let graph = Graph::erdos_renyi(5, 0.6, 2);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let circuit = ansatz.bind(&[0.4], &[0.3]).unwrap();
        let edges: Vec<(usize, usize, f64)> =
            graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let from_edges = Problem::max_cut_from_edges(graph.num_nodes(), &edges).unwrap();
        for backend in Backend::all() {
            let generic = backend
                .expectation(&circuit, &Problem::max_cut(&graph))
                .unwrap();
            let with_edges = backend.expectation(&circuit, &from_edges).unwrap();
            assert_eq!(generic.to_bits(), with_edges.to_bits(), "{backend}");
        }
    }

    #[test]
    fn backend_display_from_str_round_trips_exhaustively() {
        for &backend in Backend::all() {
            let parsed: Backend = backend.to_string().parse().unwrap();
            assert_eq!(parsed, backend);
        }
        // Short aliases.
        assert_eq!("sv".parse::<Backend>().unwrap(), Backend::StateVector);
        assert_eq!("tn".parse::<Backend>().unwrap(), Backend::TensorNetwork);
        let err = "gpu".parse::<Backend>().unwrap_err();
        assert_eq!(err.what, "backend");
        assert!(err.to_string().contains("statevector"), "{err}");
    }

    #[test]
    fn default_backend_is_tensor_network() {
        assert_eq!(Backend::default(), Backend::TensorNetwork);
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::StateVector.to_string(), "statevector");
        assert_eq!(Backend::TensorNetwork.to_string(), "tensor-network");
    }

    #[test]
    fn unbound_circuit_is_a_backend_error() {
        let graph = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        // Template still has free parameters.
        let err = Backend::StateVector.expectation(ansatz.template(), &Problem::max_cut(&graph));
        assert!(matches!(err, Err(QaoaError::Backend { .. })));
    }
}
