//! Simulator backend selection.
//!
//! QArchSearch evaluates candidate circuits with the QTensor tensor-network
//! simulator; the paper lists GPU statevector simulation as future work. This
//! crate keeps both options behind one enum so the evaluator, the search
//! schedulers and the benches can switch freely (and so the
//! `backend_compare` ablation bench can quantify the difference).

use crate::error::QaoaError;
use graphs::Graph;
use qcircuit::Circuit;
use serde::{Deserialize, Serialize};

/// Which simulator evaluates circuit expectation values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Backend {
    /// Dense state-vector simulation (exact, memory ∝ 2^n).
    StateVector,
    /// Tensor-network contraction with per-edge light cones (QTensor analog).
    /// Edges are contracted in parallel — the inner level of the paper's
    /// two-level parallelization.
    #[default]
    TensorNetwork,
    /// Tensor-network contraction with sequential edge evaluation (used by
    /// the two-level parallelization ablation).
    TensorNetworkSequential,
}

impl Backend {
    /// All backends, for benches and tests.
    pub fn all() -> &'static [Backend] {
        &[
            Backend::StateVector,
            Backend::TensorNetwork,
            Backend::TensorNetworkSequential,
        ]
    }

    /// The `(u, v, w)` edge list the simulator backends consume. Callers
    /// that evaluate many circuits on one graph should build this once and
    /// use [`Backend::maxcut_expectation_with_edges`].
    pub fn edge_list(graph: &Graph) -> Vec<(usize, usize, f64)> {
        graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect()
    }

    /// Max-Cut energy ⟨C⟩ of a fully-bound circuit on `graph`.
    ///
    /// Convenience wrapper that rebuilds the edge list on every call; hot
    /// loops should prefer [`Backend::maxcut_expectation_with_edges`] with a
    /// cached list (as [`crate::energy::EnergyEvaluator`] does).
    pub fn maxcut_expectation(&self, circuit: &Circuit, graph: &Graph) -> Result<f64, QaoaError> {
        self.maxcut_expectation_with_edges(circuit, &Self::edge_list(graph))
    }

    /// Max-Cut energy ⟨C⟩ of a fully-bound circuit for a prebuilt edge list.
    pub fn maxcut_expectation_with_edges(
        &self,
        circuit: &Circuit,
        edges: &[(usize, usize, f64)],
    ) -> Result<f64, QaoaError> {
        match self {
            Backend::StateVector => {
                let state = statevec::StateVector::from_circuit(circuit).map_err(|e| {
                    QaoaError::Backend {
                        message: e.to_string(),
                    }
                })?;
                Ok(statevec::expectation::maxcut_expectation(&state, edges))
            }
            Backend::TensorNetwork => tensornet::lightcone::maxcut_expectation(circuit, edges)
                .map_err(|e| QaoaError::Backend {
                    message: e.to_string(),
                }),
            Backend::TensorNetworkSequential => {
                tensornet::lightcone::maxcut_expectation_sequential(circuit, edges).map_err(|e| {
                    QaoaError::Backend {
                        message: e.to_string(),
                    }
                })
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Backend::StateVector => "statevector",
            Backend::TensorNetwork => "tensor-network",
            Backend::TensorNetworkSequential => "tensor-network-sequential",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::QaoaAnsatz;
    use crate::mixer::Mixer;

    #[test]
    fn backends_agree_on_qaoa_energy() {
        let graph = Graph::erdos_renyi(6, 0.5, 11);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let circuit = ansatz.bind(&[0.4, 0.7], &[0.3, 0.1]).unwrap();
        let sv = Backend::StateVector
            .maxcut_expectation(&circuit, &graph)
            .unwrap();
        let tn = Backend::TensorNetwork
            .maxcut_expectation(&circuit, &graph)
            .unwrap();
        let tns = Backend::TensorNetworkSequential
            .maxcut_expectation(&circuit, &graph)
            .unwrap();
        assert!((sv - tn).abs() < 1e-8, "sv {sv} vs tn {tn}");
        assert!((tn - tns).abs() < 1e-12);
    }

    #[test]
    fn default_backend_is_tensor_network() {
        assert_eq!(Backend::default(), Backend::TensorNetwork);
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::StateVector.to_string(), "statevector");
        assert_eq!(Backend::TensorNetwork.to_string(), "tensor-network");
    }

    #[test]
    fn unbound_circuit_is_a_backend_error() {
        let graph = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        // Template still has free parameters.
        let err = Backend::StateVector.maxcut_expectation(ansatz.template(), &graph);
        assert!(matches!(err, Err(QaoaError::Backend { .. })));
    }
}
