//! Simulator backend selection.
//!
//! QArchSearch evaluates candidate circuits with the QTensor tensor-network
//! simulator; the paper lists GPU statevector simulation as future work. This
//! crate keeps both options behind one enum so the evaluator, the search
//! schedulers and the benches can switch freely (and so the
//! `backend_compare` ablation bench can quantify the difference).

use crate::error::QaoaError;
use graphs::{Graph, Problem};
use qcircuit::Circuit;
use serde::{Deserialize, Serialize};

/// Which simulator evaluates circuit expectation values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Backend {
    /// Dense state-vector simulation (exact, memory ∝ 2^n).
    StateVector,
    /// Tensor-network contraction with per-edge light cones (QTensor analog).
    /// Edges are contracted in parallel — the inner level of the paper's
    /// two-level parallelization.
    #[default]
    TensorNetwork,
    /// Tensor-network contraction with sequential edge evaluation (used by
    /// the two-level parallelization ablation).
    TensorNetworkSequential,
}

impl Backend {
    /// All backends, for benches and tests.
    pub fn all() -> &'static [Backend] {
        &[
            Backend::StateVector,
            Backend::TensorNetwork,
            Backend::TensorNetworkSequential,
        ]
    }

    /// The `(u, v, w)` edge list of a graph. Legacy helper for the
    /// deprecated edge-list entry points; new code should build a
    /// [`Problem`] once and use [`Backend::expectation`].
    pub fn edge_list(graph: &Graph) -> Vec<(usize, usize, f64)> {
        graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect()
    }

    /// Energy ⟨C⟩ of a fully-bound circuit for an arbitrary diagonal cost
    /// [`Problem`] — the problem-generic entry point every layer routes
    /// through.
    ///
    /// Callers that evaluate many circuits against one objective should
    /// build the [`Problem`] once and reuse it (as
    /// [`crate::energy::EnergyEvaluator`] does): the term list plays the
    /// role the cached edge list used to, without the per-call rebuild
    /// footgun of the deprecated [`Backend::maxcut_expectation`].
    pub fn expectation(&self, circuit: &Circuit, problem: &Problem) -> Result<f64, QaoaError> {
        let backend_err = |message: String| QaoaError::Backend { message };
        match self {
            Backend::StateVector => {
                let state = statevec::StateVector::from_circuit(circuit)
                    .map_err(|e| backend_err(e.to_string()))?;
                Ok(statevec::expectation::problem_expectation(&state, problem))
            }
            Backend::TensorNetwork => tensornet::lightcone::problem_expectation(circuit, problem)
                .map_err(|e| backend_err(e.to_string())),
            Backend::TensorNetworkSequential => {
                tensornet::lightcone::problem_expectation_sequential(circuit, problem)
                    .map_err(|e| backend_err(e.to_string()))
            }
        }
    }

    /// Max-Cut energy ⟨C⟩ of a fully-bound circuit on `graph`.
    ///
    /// Deprecated convenience wrapper: it rebuilds the Max-Cut Hamiltonian
    /// on every call. Build [`Problem::max_cut`] once and call
    /// [`Backend::expectation`] instead.
    #[deprecated(
        since = "0.1.0",
        note = "build a `Problem` once (e.g. `Problem::max_cut`) and call `Backend::expectation`"
    )]
    pub fn maxcut_expectation(&self, circuit: &Circuit, graph: &Graph) -> Result<f64, QaoaError> {
        self.expectation(circuit, &Problem::max_cut(graph))
    }

    /// Max-Cut energy ⟨C⟩ of a fully-bound circuit for a prebuilt edge list.
    ///
    /// Deprecated: the cached-edge-list pattern is superseded by caching a
    /// [`Problem`] and calling [`Backend::expectation`].
    #[deprecated(
        since = "0.1.0",
        note = "build a `Problem` once (e.g. `Problem::max_cut`) and call `Backend::expectation`"
    )]
    pub fn maxcut_expectation_with_edges(
        &self,
        circuit: &Circuit,
        edges: &[(usize, usize, f64)],
    ) -> Result<f64, QaoaError> {
        let problem = Problem::max_cut_from_edges(circuit.num_qubits(), edges).map_err(|e| {
            QaoaError::Backend {
                message: e.to_string(),
            }
        })?;
        self.expectation(circuit, &problem)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Backend::StateVector => "statevector",
            Backend::TensorNetwork => "tensor-network",
            Backend::TensorNetworkSequential => "tensor-network-sequential",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::QaoaAnsatz;
    use crate::mixer::Mixer;

    #[test]
    fn backends_agree_on_qaoa_energy() {
        let graph = Graph::erdos_renyi(6, 0.5, 11);
        let problem = Problem::max_cut(&graph);
        let ansatz = QaoaAnsatz::new(&graph, 2, Mixer::qnas());
        let circuit = ansatz.bind(&[0.4, 0.7], &[0.3, 0.1]).unwrap();
        let sv = Backend::StateVector
            .expectation(&circuit, &problem)
            .unwrap();
        let tn = Backend::TensorNetwork
            .expectation(&circuit, &problem)
            .unwrap();
        let tns = Backend::TensorNetworkSequential
            .expectation(&circuit, &problem)
            .unwrap();
        assert!((sv - tn).abs() < 1e-8, "sv {sv} vs tn {tn}");
        assert!((tn - tns).abs() < 1e-12);
    }

    #[test]
    fn backends_agree_on_every_shipped_problem() {
        let graph = Graph::erdos_renyi(6, 0.5, 4);
        for kind in graphs::ProblemKind::all(13) {
            let problem = kind.instantiate(&graph);
            let ansatz = QaoaAnsatz::for_problem(&problem, 1, Mixer::qnas()).unwrap();
            let circuit = ansatz.bind(&[0.35], &[0.2]).unwrap();
            let sv = Backend::StateVector
                .expectation(&circuit, &problem)
                .unwrap();
            let tn = Backend::TensorNetwork
                .expectation(&circuit, &problem)
                .unwrap();
            assert!(
                (sv - tn).abs() < 1e-8,
                "{}: sv {sv} vs tn {tn}",
                problem.name()
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_maxcut_wrappers_route_through_the_problem_path() {
        let graph = Graph::erdos_renyi(5, 0.6, 2);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        let circuit = ansatz.bind(&[0.4], &[0.3]).unwrap();
        for backend in Backend::all() {
            let generic = backend
                .expectation(&circuit, &Problem::max_cut(&graph))
                .unwrap();
            let wrapped = backend.maxcut_expectation(&circuit, &graph).unwrap();
            let with_edges = backend
                .maxcut_expectation_with_edges(&circuit, &Backend::edge_list(&graph))
                .unwrap();
            assert_eq!(generic.to_bits(), wrapped.to_bits(), "{backend}");
            assert_eq!(generic.to_bits(), with_edges.to_bits(), "{backend}");
        }
    }

    #[test]
    fn default_backend_is_tensor_network() {
        assert_eq!(Backend::default(), Backend::TensorNetwork);
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::StateVector.to_string(), "statevector");
        assert_eq!(Backend::TensorNetwork.to_string(), "tensor-network");
    }

    #[test]
    fn unbound_circuit_is_a_backend_error() {
        let graph = Graph::cycle(3);
        let ansatz = QaoaAnsatz::new(&graph, 1, Mixer::baseline());
        // Template still has free parameters.
        let err = Backend::StateVector.expectation(ansatz.template(), &Problem::max_cut(&graph));
        assert!(matches!(err, Err(QaoaError::Backend { .. })));
    }
}
